#include "costtool/loc.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace {

TEST(Loc, EmptySource) {
  const auto r = ct::count_loc("");
  EXPECT_EQ(r.physical_lines, 0);
  EXPECT_EQ(r.code_lines, 0);
  EXPECT_EQ(r.tokens, 0);
}

TEST(Loc, CountsCodeBlankAndComments) {
  const char* src =
      "// header comment\n"
      "#include <vector>\n"
      "\n"
      "int main() {\n"
      "  return 0;  // inline\n"
      "}\n";
  const auto r = ct::count_loc(src);
  EXPECT_EQ(r.physical_lines, 6);
  EXPECT_EQ(r.blank_lines, 1);
  EXPECT_EQ(r.comment_lines, 1);
  EXPECT_EQ(r.code_lines, 4);
}

TEST(Loc, TokensExcludeComments) {
  const auto r = ct::count_loc("int x; // a b c d e f g\n");
  EXPECT_EQ(r.tokens, 3);
}

TEST(Loc, NoTrailingNewline) {
  const auto r = ct::count_loc("int x;");
  EXPECT_EQ(r.physical_lines, 1);
  EXPECT_EQ(r.code_lines, 1);
}

TEST(Loc, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/loc_roundtrip.cpp";
  {
    std::ofstream out(path);
    out << "int a;\nint b;\n";
  }
  const auto r = ct::count_loc_file(path);
  EXPECT_EQ(r.code_lines, 2);
  std::remove(path.c_str());
}

TEST(Loc, MissingFileThrows) {
  EXPECT_THROW((void)ct::count_loc_file("/nonexistent/file.cpp"), std::runtime_error);
}

TEST(Loc, PaperListing3Scale) {
  // The paper reports 17 LOC for its Cpp-Taskflow Listing 3; a structurally
  // identical program must land on exactly that count.
  const char* listing3 =
      "tf::Taskflow tf;\n"
      "auto [a0, a1, a2, a3, b0, b1, b2] = tf.emplace(\n"
      "  [] () { std::cout << \"a0\\n\"; },\n"
      "  [] () { std::cout << \"a1\\n\"; },\n"
      "  [] () { std::cout << \"a2\\n\"; },\n"
      "  [] () { std::cout << \"a3\\n\"; },\n"
      "  [] () { std::cout << \"b0\\n\"; },\n"
      "  [] () { std::cout << \"b1\\n\"; },\n"
      "  [] () { std::cout << \"b2\\n\"; }\n"
      ");\n"
      "a0.precede(a1);\n"
      "a1.precede(a2, b2);\n"
      "a2.precede(a3);\n"
      "b0.precede(b1);\n"
      "b1.precede(a2, b2);\n"
      "b2.precede(a3);\n"
      "tf.wait_for_all();\n";
  const auto r = ct::count_loc(listing3);
  EXPECT_EQ(r.code_lines, 17);
}

}  // namespace
