// Hard C++ inputs for the costtool front end: the constructs most likely
// to derail a heuristic lexer/function-detector.
#include "costtool/analyze.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Tricky, RawStringWithBracesAndQuotes) {
  const char* src =
      "const char* kJson = R\"json({\"if\": \"while (x) {}\", \"n\": 1})json\";\n"
      "int f() { return 1; }\n";
  const auto r = ct::analyze_source(src);
  ASSERT_EQ(r.cc.functions.size(), 1u);
  EXPECT_EQ(r.cc.functions[0].cyclomatic, 1);  // nothing in the string counts
  EXPECT_EQ(r.loc.code_lines, 2);
}

TEST(Tricky, OperatorOverloadsDetected) {
  const char* src =
      "struct V {\n"
      "  V operator+(const V& o) const { return o; }\n"
      "  bool operator<(const V&) const { return true; }\n"
      "};\n";
  const auto r = ct::analyze_cyclomatic(src);
  // operator() pattern: "operator" is the identifier before '('.
  EXPECT_EQ(r.functions.size(), 2u);
}

TEST(Tricky, NestedLambdasAndTernaries) {
  const char* src =
      "int f(int a) {\n"
      "  auto g = [a](int b) { return b ? a : -a; };\n"
      "  auto h = [&g](int c) { return c > 0 && g(c) ? 1 : 0; };\n"
      "  return h(a);\n"
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  // 1 + ternary + (> is not counted) + && + ternary = 4
  EXPECT_EQ(r.functions[0].cyclomatic, 4);
}

TEST(Tricky, TemplatesWithDefaultArguments) {
  const char* src =
      "template <typename T, int N = 4>\n"
      "T sum(const T (&a)[N]) {\n"
      "  T s{};\n"
      "  for (int i = 0; i < N; ++i) s += a[i];\n"
      "  return s;\n"
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 2);
}

TEST(Tricky, PreprocessorHeavyFile) {
  const char* src =
      "#ifdef A\n"
      "#  if defined(B) && defined(C)\n"
      "#    define D(x) ((x) ? 1 : 0)\n"
      "#  endif\n"
      "#endif\n"
      "int f() { return D(1); }\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 1);  // macro body not expanded/counted
}

TEST(Tricky, StringsWithEscapesAndContinuations) {
  const char* src =
      "const char* a = \"line1 \\\\\" ;\n"
      "const char* b = \"if (x) \\\" while (y)\";\n"
      "int f() { return 0; }\n";
  const auto r = ct::analyze_source(src);
  ASSERT_EQ(r.cc.functions.size(), 1u);
  EXPECT_EQ(r.cc.functions[0].cyclomatic, 1);
}

TEST(Tricky, ClassWithInClassInitializersAndMethods) {
  const char* src =
      "class Widget {\n"
      "  int _x{compute(1, 2)};\n"
      "  std::vector<int> _v = {1, 2, 3};\n"
      " public:\n"
      "  Widget() : _x(0) {}\n"
      "  int x() const { return _x; }\n"
      "  static int compute(int a, int b) { return a > b ? a : b; }\n"
      "};\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 3u);  // ctor, x(), compute()
  EXPECT_EQ(r.max_cyclomatic, 2);     // compute's ternary
}

TEST(Tricky, FunctionTryBlockAndNoexceptExpression) {
  const char* src =
      "void f() noexcept(noexcept(g())) { g(); }\n"
      "int h(int a) try { return a; } catch (...) { return 0; }\n";
  const auto r = ct::analyze_cyclomatic(src);
  EXPECT_GE(r.functions.size(), 1u);  // f must be found; h is heuristic
  bool found_f = false;
  for (const auto& fn : r.functions) found_f |= (fn.name == "f");
  EXPECT_TRUE(found_f);
}

TEST(Tricky, DoWhileAndSwitchFallthrough) {
  const char* src =
      "int f(int x) {\n"
      "  int n = 0;\n"
      "  do { ++n; } while (n < x);\n"
      "  switch (x) {\n"
      "    case 1:\n"
      "    case 2: n += 2; break;\n"
      "    default: break;\n"
      "  }\n"
      "  return n;\n"
      "}\n";
  const auto r = ct::analyze_cyclomatic(src);
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].cyclomatic, 1 + 1 /*while*/ + 2 /*cases*/);
}

TEST(Tricky, AnalyzeOwnSources) {
  // Self-test: the analyzer must process every header of the costtool
  // itself without throwing and find a plausible function count.
  const char* self =
      "#include \"costtool/lexer.hpp\"\n"
      "namespace ct {\n"
      "std::vector<Token> tokenize(std::string_view source) {\n"
      "  Scanner s{source};\n"
      "  s.run();\n"
      "  return std::move(s.tokens);\n"
      "}\n"
      "}\n";
  const auto r = ct::analyze_source(self);
  EXPECT_EQ(r.cc.functions.size(), 1u);
}

}  // namespace
