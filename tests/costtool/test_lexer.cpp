#include "costtool/lexer.hpp"

#include <gtest/gtest.h>

namespace {

using ct::LineClass;
using ct::Token;
using ct::TokenKind;

std::vector<std::string> texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const auto& t : toks) out.push_back(t.text);
  return out;
}

TEST(Lexer, EmptySource) { EXPECT_TRUE(ct::tokenize("").empty()); }

TEST(Lexer, SimpleStatement) {
  const auto toks = ct::tokenize("int x = 42;");
  EXPECT_EQ(texts(toks), (std::vector<std::string>{"int", "x", "=", "42", ";"}));
  EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[3].kind, TokenKind::Number);
}

TEST(Lexer, LineCommentsProduceNoTokens) {
  const auto toks = ct::tokenize("int a; // comment with if (x) {}\nint b;");
  EXPECT_EQ(texts(toks), (std::vector<std::string>{"int", "a", ";", "int", "b", ";"}));
  EXPECT_EQ(toks[3].line, 2);
}

TEST(Lexer, BlockCommentsSpanLines) {
  const auto toks = ct::tokenize("int a; /* if (x)\n while(y) */ int b;");
  EXPECT_EQ(texts(toks), (std::vector<std::string>{"int", "a", ";", "int", "b", ";"}));
}

TEST(Lexer, StringLiteralIsOneToken) {
  const auto toks = ct::tokenize(R"(auto s = "if (x) && y";)");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokenKind::String);
  EXPECT_EQ(toks[3].text, "\"if (x) && y\"");
}

TEST(Lexer, EscapedQuoteInsideString) {
  const auto toks = ct::tokenize(R"(auto s = "a\"b";)");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokenKind::String);
}

TEST(Lexer, CharLiteral) {
  const auto toks = ct::tokenize("char c = '\\n';");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokenKind::String);
}

TEST(Lexer, RawStringLiteral) {
  const auto toks = ct::tokenize("auto s = R\"(has \"quotes\" and ))\")\";");
  bool found_raw = false;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::String && t.text.rfind("R\"(", 0) == 0) found_raw = true;
  }
  EXPECT_TRUE(found_raw);
}

TEST(Lexer, MultiCharOperatorsLongestMatch) {
  const auto toks = ct::tokenize("a && b || c->d; e <<= 2; x ? y : z;");
  const auto t = texts(toks);
  EXPECT_NE(std::find(t.begin(), t.end(), "&&"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "||"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "->"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "<<="), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "?"), t.end());
}

TEST(Lexer, PreprocessorTokensAreTagged) {
  const auto toks = ct::tokenize("#if defined(FOO) && BAR\nint x;\n#endif\n");
  int preproc = 0, code = 0;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::Preprocessor) ++preproc;
    else ++code;
  }
  EXPECT_GE(preproc, 6);  // #, if, defined, (, FOO, ), &&, BAR / #, endif
  EXPECT_EQ(code, 3);     // int x ;
}

TEST(Lexer, PreprocessorContinuationLine) {
  const auto toks = ct::tokenize("#define M(a) \\\n  if (a) x\nint y;\n");
  for (const auto& t : toks) {
    if (t.text == "if") EXPECT_EQ(t.kind, TokenKind::Preprocessor);
    if (t.text == "y") EXPECT_EQ(t.kind, TokenKind::Identifier);
  }
}

TEST(Lexer, FloatAndHexNumbers) {
  const auto toks = ct::tokenize("double d = 1.5e-3; int h = 0xFF; float f = .25f;");
  int numbers = 0;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::Number) ++numbers;
  }
  EXPECT_EQ(numbers, 3);
}

TEST(Lexer, LineNumbersTrackNewlines) {
  const auto toks = ct::tokenize("a\nb\n\nc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(ClassifyLines, BlankCommentAndCode) {
  const auto classes = ct::classify_lines("int a;\n\n// only comment\nint b; // trailing\n");
  ASSERT_EQ(classes.size(), 4u);
  EXPECT_EQ(classes[0], LineClass::Code);
  EXPECT_EQ(classes[1], LineClass::Blank);
  EXPECT_EQ(classes[2], LineClass::CommentOnly);
  EXPECT_EQ(classes[3], LineClass::Code);
}

TEST(ClassifyLines, BlockCommentInteriorIsCommentOnly) {
  const auto classes = ct::classify_lines("/*\n body text\n*/\nint x;\n");
  ASSERT_EQ(classes.size(), 4u);
  EXPECT_EQ(classes[0], LineClass::CommentOnly);
  EXPECT_EQ(classes[1], LineClass::CommentOnly);
  EXPECT_EQ(classes[2], LineClass::CommentOnly);
  EXPECT_EQ(classes[3], LineClass::Code);
}

}  // namespace
