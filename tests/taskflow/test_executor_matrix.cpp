// Property sweep over the executor configuration space: every combination
// of (worker count, cache on/off, balance-wake probability, executor kind)
// must execute randomized DAGs correctly - the broad-coverage counterpart
// of the targeted tests in test_executor.cpp.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace {

struct MatrixParam {
  int workers;
  bool cache;
  double wake_probability;
};

class ExecutorMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  std::shared_ptr<tf::WorkStealingExecutor> make() const {
    const auto& p = GetParam();
    tf::WorkStealingOptions opt;
    opt.enable_worker_cache = p.cache;
    opt.balance_wake_probability = p.wake_probability;
    return tf::make_executor(static_cast<std::size_t>(p.workers), opt);
  }
};

TEST_P(ExecutorMatrix, RandomDagOrderingHolds) {
  auto executor = make();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    tf::Taskflow tf(executor);
    constexpr int n = 600;
    std::vector<std::atomic<int>> stamp(n);
    for (auto& s : stamp) s.store(-1);
    std::atomic<int> clock{0};

    std::vector<tf::Task> tasks;
    tasks.reserve(n);
    for (int i = 0; i < n; ++i) {
      tasks.push_back(tf.emplace(
          [&stamp, &clock, i] { stamp[static_cast<std::size_t>(i)] = clock++; }));
    }
    support::Xoshiro256 rng(seed);
    std::vector<std::pair<int, int>> edges;
    for (int v = 1; v < n; ++v) {
      for (std::uint64_t e = 0; e < rng.below(3); ++e) {
        const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(v)));
        tasks[static_cast<std::size_t>(u)].precede(tasks[static_cast<std::size_t>(v)]);
        edges.emplace_back(u, v);
      }
    }
    tf.wait_for_all();
    for (auto [u, v] : edges) {
      ASSERT_LT(stamp[static_cast<std::size_t>(u)].load(),
                stamp[static_cast<std::size_t>(v)].load())
          << "seed " << seed;
    }
  }
}

TEST_P(ExecutorMatrix, SubflowsJoinUnderEveryConfiguration) {
  auto executor = make();
  tf::Taskflow tf(executor);
  std::atomic<int> order_violations{0};
  std::atomic<int> children{0};
  for (int i = 0; i < 40; ++i) {
    auto parent = tf.emplace([&](tf::SubflowBuilder& sf) {
      for (int j = 0; j < 6; ++j) sf.emplace([&] { children++; });
    });
    auto after = tf.emplace([&, i] {
      // All children of *this* parent must have finished; since parents are
      // independent, children is at least 6*(number of finished parents) and
      // our own parent's 6 are included.  A cheap necessary condition:
      if (children.load() < 6) order_violations++;
    });
    parent.precede(after);
  }
  tf.wait_for_all();
  EXPECT_EQ(order_violations.load(), 0);
  EXPECT_EQ(children.load(), 240);
}

TEST_P(ExecutorMatrix, AlgorithmsProduceExactResults) {
  auto executor = make();
  tf::Taskflow tf(executor);
  std::vector<long> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<long>(i % 97);
  long sum = 0;
  tf.reduce(data.begin(), data.end(), sum, std::plus<long>{});
  tf.wait_for_all();
  long expected = 0;
  for (long v : data) expected += v;
  EXPECT_EQ(sum, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ExecutorMatrix,
    ::testing::Values(MatrixParam{1, true, 1.0 / 64}, MatrixParam{1, false, 0.0},
                      MatrixParam{2, true, 0.0}, MatrixParam{2, false, 1.0 / 8},
                      MatrixParam{4, true, 1.0 / 64}, MatrixParam{4, false, 1.0},
                      MatrixParam{8, true, 0.5}, MatrixParam{8, false, 1.0 / 64}),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return "w" + std::to_string(info.param.workers) +
             (info.param.cache ? "_cache" : "_nocache") + "_p" +
             std::to_string(static_cast<int>(info.param.wake_probability * 64));
    });

// Cross-kind comparison: the SimpleExecutor must agree with work stealing
// on a deterministic pipeline computation.
TEST(ExecutorKinds, PipelineResultIdentical) {
  auto run = [](std::shared_ptr<tf::ExecutorInterface> executor) {
    tf::Taskflow tf(std::move(executor));
    std::vector<double> stages(6, 0.0);
    std::vector<tf::Task> tasks;
    for (int s = 0; s < 6; ++s) {
      tasks.push_back(tf.emplace([&stages, s] {
        stages[static_cast<std::size_t>(s)] =
            (s == 0 ? 1.0 : stages[static_cast<std::size_t>(s - 1)]) * (s + 2);
      }));
    }
    tf.linearize(tasks);
    tf.wait_for_all();
    return stages.back();
  };
  const double a = run(tf::make_executor(4));
  const double b = run(std::make_shared<tf::SimpleExecutor>(4));
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, 2.0 * 3 * 4 * 5 * 6 * 7);
}

}  // namespace
