// Dynamic tasking (paper §III-D, Fig. 4 / Listing 7): joined and detached
// subflows, nesting, and the unified-interface property.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>

namespace {

class Stamps {
 public:
  void mark(const std::string& name) {
    const int stamp = _clock.fetch_add(1, std::memory_order_relaxed);
    std::scoped_lock lock(_mutex);
    _stamps[name] = stamp;
  }
  [[nodiscard]] bool before(const std::string& a, const std::string& b) const {
    return _stamps.at(a) < _stamps.at(b);
  }
  [[nodiscard]] bool has(const std::string& a) const { return _stamps.count(a) > 0; }
  [[nodiscard]] std::size_t count() const { return _stamps.size(); }

 private:
  std::atomic<int> _clock{0};
  mutable std::mutex _mutex;
  std::map<std::string, int> _stamps;
};

TEST(Subflow, Figure4JoinedSubflow) {
  // B spawns B1, B2, B3; joined, so all must finish before D.
  for (int rep = 0; rep < 20; ++rep) {
    tf::Taskflow tf(4);
    Stamps st;
    auto A = tf.emplace([&] { st.mark("A"); });
    auto C = tf.emplace([&] { st.mark("C"); });
    auto D = tf.emplace([&] { st.mark("D"); });
    auto B = tf.emplace([&](tf::SubflowBuilder& subflow) {
      st.mark("B");
      auto [B1, B2, B3] = subflow.emplace([&] { st.mark("B1"); },
                                          [&] { st.mark("B2"); },
                                          [&] { st.mark("B3"); });
      B1.precede(B3);
      B2.precede(B3);
    });
    A.precede(B, C);
    B.precede(D);
    C.precede(D);
    tf.wait_for_all();

    EXPECT_EQ(st.count(), 7u);
    EXPECT_TRUE(st.before("A", "B"));
    EXPECT_TRUE(st.before("A", "C"));
    EXPECT_TRUE(st.before("B", "B1"));
    EXPECT_TRUE(st.before("B", "B2"));
    EXPECT_TRUE(st.before("B1", "B3"));
    EXPECT_TRUE(st.before("B2", "B3"));
    // Joined: the whole subflow precedes the parent's successor D.
    EXPECT_TRUE(st.before("B3", "D"));
    EXPECT_TRUE(st.before("C", "D"));
  }
}

TEST(Subflow, DetachedSubflowDoesNotGateSuccessors) {
  // With detach(), D may run before the subflow, but the topology still
  // waits for every detached task (paper: "a detached subflow will
  // eventually join the end of the topology").
  std::atomic<int> subflow_done{0};
  std::atomic<int> total{0};
  for (int rep = 0; rep < 20; ++rep) {
    tf::Taskflow tf(4);
    auto B = tf.emplace([&](tf::SubflowBuilder& sf) {
      auto [x, y] = sf.emplace([&] { subflow_done++; }, [&] { subflow_done++; });
      x.precede(y);
      sf.detach();
      EXPECT_TRUE(sf.detached());
    });
    auto D = tf.emplace([&] { total++; });
    B.precede(D);
    tf.wait_for_all();
  }
  // All detached tasks completed by the time wait_for_all returned.
  EXPECT_EQ(subflow_done.load(), 40);
  EXPECT_EQ(total.load(), 20);
}

TEST(Subflow, JoinAfterDetachRestoresJoining) {
  tf::Taskflow tf(2);
  Stamps st;
  auto B = tf.emplace([&](tf::SubflowBuilder& sf) {
    st.mark("B");
    sf.detach();
    sf.join();  // change of mind: joined again (default behaviour)
    EXPECT_TRUE(sf.joined());
    sf.emplace([&] { st.mark("child"); });
  });
  auto D = tf.emplace([&] { st.mark("D"); });
  B.precede(D);
  tf.wait_for_all();
  EXPECT_TRUE(st.before("child", "D"));
}

TEST(Subflow, NestedSubflowsJoinRecursively) {
  // A spawns A1 and A2; A2 spawns A2_1, A2_2 (paper Fig. 5 structure).
  for (int rep = 0; rep < 10; ++rep) {
    tf::Taskflow tf(4);
    Stamps st;
    auto A = tf.emplace([&](tf::SubflowBuilder& sfa) {
      st.mark("A");
      auto A1 = sfa.emplace([&] { st.mark("A1"); });
      auto A2 = sfa.emplace([&](tf::SubflowBuilder& sfa2) {
        st.mark("A2");
        auto A2_1 = sfa2.emplace([&] { st.mark("A2_1"); });
        auto A2_2 = sfa2.emplace([&] { st.mark("A2_2"); });
        A2_1.precede(A2_2);
      });
      A1.precede(A2);
    });
    auto End = tf.emplace([&] { st.mark("End"); });
    A.precede(End);
    tf.wait_for_all();

    EXPECT_EQ(st.count(), 6u);
    EXPECT_TRUE(st.before("A", "A1"));
    EXPECT_TRUE(st.before("A1", "A2"));
    EXPECT_TRUE(st.before("A2", "A2_1"));
    EXPECT_TRUE(st.before("A2_1", "A2_2"));
    // The innermost nested task still precedes the outer parent's successor.
    EXPECT_TRUE(st.before("A2_2", "End"));
  }
}

TEST(Subflow, EmptySubflowCompletesNormally) {
  tf::Taskflow tf(2);
  std::atomic<int> ran{0};
  auto B = tf.emplace([&](tf::SubflowBuilder&) { ran++; });
  auto D = tf.emplace([&] { ran++; });
  B.precede(D);
  tf.wait_for_all();
  EXPECT_EQ(ran.load(), 2);
}

TEST(Subflow, UnifiedInterfaceSupportsAlgorithms) {
  // The same parallel_for building block used in static tasking works
  // inside a subflow (the paper's "unified interface" claim).
  tf::Taskflow tf(4);
  std::vector<int> data(1000, 0);
  auto B = tf.emplace([&](tf::SubflowBuilder& sf) {
    sf.parallel_for(data.begin(), data.end(), [](int& v) { v += 1; });
  });
  auto Check = tf.emplace([&] {});
  B.precede(Check);
  tf.wait_for_all();
  for (int v : data) EXPECT_EQ(v, 1);
}

TEST(Subflow, RecursiveFibonacciViaNestedSubflows) {
  // Classic recursive decomposition: each level spawns a nested subflow.
  std::function<int(int)> fib_seq = [&](int n) {
    return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2);
  };

  struct Spawner {
    static void spawn(tf::SubflowBuilder& sf, int n, int* out) {
      if (n < 2) {
        *out = n;
        return;
      }
      auto lhs = std::make_shared<int>(0);
      auto rhs = std::make_shared<int>(0);
      auto L = sf.emplace(
          [n, lhs](tf::SubflowBuilder& s) { spawn(s, n - 1, lhs.get()); });
      auto R = sf.emplace(
          [n, rhs](tf::SubflowBuilder& s) { spawn(s, n - 2, rhs.get()); });
      auto merge = sf.emplace([out, lhs, rhs] { *out = *lhs + *rhs; });
      L.precede(merge);
      R.precede(merge);
    }
  };

  int result = 0;
  tf::Taskflow tf(4);
  tf.emplace([&](tf::SubflowBuilder& sf) { Spawner::spawn(sf, 12, &result); });
  tf.wait_for_all();
  EXPECT_EQ(result, fib_seq(12));  // 144
}

TEST(Subflow, ManyParallelSubflows) {
  tf::Taskflow tf(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    tf.emplace([&](tf::SubflowBuilder& sf) {
      for (int j = 0; j < 10; ++j) sf.emplace([&] { counter++; });
    });
  }
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(Subflow, DetachedSubflowCountsTowardTopologyCompletion) {
  // A lone dynamic task with a detached slow child: wait_for_all must not
  // return until the child ran.
  tf::Taskflow tf(2);
  std::atomic<bool> child_ran{false};
  tf.emplace([&](tf::SubflowBuilder& sf) {
    sf.emplace([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      child_ran.store(true);
    });
    sf.detach();
  });
  tf.wait_for_all();
  EXPECT_TRUE(child_ran.load());
}

}  // namespace
