// tf::Framework (reusable graphs) and the v1-era API extensions
// (emplace_future, broadcast/gather).
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace {

TEST(Framework, RunOnceExecutesAllTasks) {
  tf::Framework fw;
  std::atomic<int> counter{0};
  auto [A, B, C] = fw.emplace([&] { counter++; }, [&] { counter++; }, [&] { counter++; });
  A.precede(B, C);
  tf::Taskflow tf(2);
  tf.run(fw).get();
  EXPECT_EQ(counter.load(), 3);
  tf.wait_for_all();
}

TEST(Framework, RunNRepeatsTheSameGraph) {
  tf::Framework fw;
  std::atomic<int> counter{0};
  std::vector<tf::Task> chain;
  for (int i = 0; i < 10; ++i) chain.push_back(fw.emplace([&] { counter++; }));
  fw.linearize(chain);

  tf::Taskflow tf(4);
  tf.run_n(fw, 25);
  EXPECT_EQ(counter.load(), 250);
  tf.wait_for_all();
}

TEST(Framework, DependenciesHoldOnEveryRun) {
  tf::Framework fw;
  int value = 0;  // written in strict order on every run
  bool ok = true;
  auto A = fw.emplace([&] {
    if (value % 3 != 0) ok = false;
    ++value;
  });
  auto B = fw.emplace([&] {
    if (value % 3 != 1) ok = false;
    ++value;
  });
  auto C = fw.emplace([&] {
    if (value % 3 != 2) ok = false;
    ++value;
  });
  A.precede(B);
  B.precede(C);

  tf::Taskflow tf(4);
  tf.run_n(fw, 50);
  EXPECT_TRUE(ok);
  EXPECT_EQ(value, 150);
  tf.wait_for_all();
}

TEST(Framework, DynamicTasksRespawnEachRun) {
  tf::Framework fw;
  std::atomic<int> children{0};
  fw.emplace([&](tf::SubflowBuilder& sf) {
    for (int i = 0; i < 5; ++i) sf.emplace([&] { children++; });
  });
  tf::Taskflow tf(2);
  tf.run_n(fw, 4);
  EXPECT_EQ(children.load(), 20);  // 5 children per run, re-spawned
  tf.wait_for_all();
}

TEST(Framework, MultipleFrameworksInterleave) {
  tf::Framework fa, fb;
  std::atomic<int> a{0}, b{0};
  fa.emplace([&] { a++; });
  fb.emplace([&] { b++; });
  tf::Taskflow tf(2);
  for (int i = 0; i < 10; ++i) {
    auto ra = tf.run(fa);
    auto rb = tf.run(fb);
    ra.get();
    rb.get();
  }
  EXPECT_EQ(a.load(), 10);
  EXPECT_EQ(b.load(), 10);
  tf.wait_for_all();
}

TEST(Framework, AlgorithmsWorkInsideFrameworks) {
  tf::Framework fw(4);
  std::vector<int> data(1000, 0);
  fw.parallel_for(data.begin(), data.end(), [](int& v) { ++v; });
  tf::Taskflow tf(4);
  tf.run_n(fw, 3);
  for (int v : data) EXPECT_EQ(v, 3);
  tf.wait_for_all();
}

TEST(EmplaceFuture, DeliversReturnValue) {
  tf::Taskflow tf(2);
  auto [task, future] = tf.emplace_future([] { return 42; });
  EXPECT_FALSE(task.empty());
  tf.silent_dispatch();
  EXPECT_EQ(future.get(), 42);
  tf.wait_for_all();
}

TEST(EmplaceFuture, VoidCallableSignalsCompletion) {
  tf::Taskflow tf(2);
  std::atomic<bool> ran{false};
  auto [task, future] = tf.emplace_future([&] { ran = true; });
  tf.silent_dispatch();
  future.get();
  EXPECT_TRUE(ran.load());
  tf.wait_for_all();
}

TEST(EmplaceFuture, ComposesWithDependencies) {
  tf::Taskflow tf(2);
  int x = 0;
  auto pre = tf.emplace([&] { x = 10; });
  auto [task, future] = tf.emplace_future([&] { return x * 2; });
  pre.precede(task);
  tf.silent_dispatch();
  EXPECT_EQ(future.get(), 20);
  tf.wait_for_all();
}

TEST(EmplaceFuture, MoveOnlyResult) {
  tf::Taskflow tf(1);
  auto [task, future] = tf.emplace_future([] { return std::make_unique<int>(7); });
  tf.silent_dispatch();
  EXPECT_EQ(*future.get(), 7);
  tf.wait_for_all();
}

TEST(BroadcastGather, VectorForms) {
  tf::Taskflow tf(4);
  std::atomic<int> stage{0};
  std::atomic<bool> order_ok{true};

  auto src = tf.emplace([&] { stage = 1; });
  std::vector<tf::Task> mids;
  for (int i = 0; i < 8; ++i) {
    mids.push_back(tf.emplace([&] {
      if (stage.load() != 1) order_ok = false;
    }));
  }
  auto sink = tf.emplace([&] {
    if (stage.exchange(2) != 1) order_ok = false;
  });
  src.broadcast(mids);  // src precedes all mids
  sink.gather(mids);    // sink succeeds all mids
  tf.wait_for_all();
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(stage.load(), 2);
}

TEST(Framework, SubflowsInsideFrameworkJoinBeforeSuccessors) {
  tf::Framework fw;
  std::atomic<int> child_sum{0};
  std::atomic<bool> d_saw_children{true};
  auto B = fw.emplace([&](tf::SubflowBuilder& sf) {
    auto c1 = sf.emplace([&] { child_sum++; });
    auto c2 = sf.emplace([&] { child_sum++; });
    c1.precede(c2);
  });
  auto D = fw.emplace([&] {
    if (child_sum.load() % 2 != 0) d_saw_children = false;
  });
  B.precede(D);
  tf::Taskflow tf(4);
  tf.run_n(fw, 10);
  EXPECT_TRUE(d_saw_children.load());
  EXPECT_EQ(child_sum.load(), 20);
  tf.wait_for_all();
}

}  // namespace
