// Fault-injection harness (ISSUE 2): randomized DAGs where tasks throw and
// runs get cancelled mid-flight, stressing the drain/skip paths under heavy
// fan-out and subflow spawning on both executors.  Deterministic per seed:
//   REPRO_FAULT_ITERS  iterations per executor kind (default 30)
//   REPRO_FAULT_SEED   base seed (default 42)
// Every wait is bounded so a scheduler bug fails the test instead of
// hanging it, and the stall report is attached to the failure message.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/env.hpp"
#include "support/rng.hpp"

namespace {

using namespace std::chrono_literals;

struct InjectedFault : std::runtime_error {
  InjectedFault() : std::runtime_error("injected fault") {}
};

constexpr auto kDrainDeadline = 120s;

class FaultModel : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 4) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }

  /// Per-(kind, iteration) stream so both executors replay identical graphs
  /// for a given seed, yet iterations stay decorrelated.
  [[nodiscard]] static support::Xoshiro256 stream(int iteration) {
    const std::uint64_t kind = std::string(GetParam()) == "simple" ? 1 : 0;
    return support::Xoshiro256(support::repro_fault_seed() +
                               0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(iteration) +
                               kind);
  }
};

// Random forward-edged DAG of static + dynamic (subflow) tasks.  Each task
// throws with probability ~1/16 except on every 4th iteration, which runs
// fault-free so the "everything executed exactly once" invariant is also
// exercised.  ~30% of iterations additionally cancel mid-run.
TEST_P(FaultModel, RandomThrowersAndCancelsAlwaysDrain) {
  const int iters = support::repro_fault_iters();
  for (int iter = 0; iter < iters; ++iter) {
    auto rng = stream(iter);
    const bool clean = (iter % 4 == 0);
    const double p_throw = clean ? 0.0 : 1.0 / 16.0;

    tf::Taskflow tf(make());
    std::atomic<long> executed{0};
    long total = 0;  // task count of a fully-clean run (children included)

    const int n = 120 + static_cast<int>(rng.below(31));
    std::vector<tf::Task> tasks;
    tasks.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ++total;
      if (rng.bernoulli(0.15)) {  // dynamic task spawning a subflow
        const int kids = 2 + static_cast<int>(rng.below(3));
        std::uint64_t kid_throw_mask = 0;
        for (int j = 0; j < kids; ++j) {
          if (rng.bernoulli(p_throw)) kid_throw_mask |= 1ull << j;
        }
        const bool detach = rng.bernoulli(0.25);
        const bool parent_throws = rng.bernoulli(p_throw);
        total += kids;
        tasks.push_back(
            tf.emplace([&executed, kids, kid_throw_mask, detach,
                        parent_throws](tf::SubflowBuilder& sf) {
              executed++;
              for (int j = 0; j < kids; ++j) {
                const bool kid_throws = (kid_throw_mask >> j) & 1;
                sf.emplace([&executed, kid_throws] {
                  executed++;
                  if (kid_throws) throw InjectedFault();
                });
              }
              if (detach) sf.detach();
              // Mid-construction fault: the just-built subflow is abandoned.
              if (parent_throws) throw InjectedFault();
            }));
      } else {
        const bool throws = rng.bernoulli(p_throw);
        tasks.push_back(tf.emplace([&executed, throws] {
          executed++;
          if (throws) throw InjectedFault();
        }));
      }
    }
    // Forward-only edges keep the graph acyclic by construction.
    for (int v = 1; v < n; ++v) {
      const auto edges = rng.below(3);
      for (std::uint64_t e = 0; e < edges; ++e) {
        tasks[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(v)))]
            .precede(tasks[static_cast<std::size_t>(v)]);
      }
    }

    const bool do_cancel = rng.bernoulli(0.3);
    auto handle = tf.dispatch();
    if (do_cancel) {
      for (std::uint64_t spins = rng.below(200); spins > 0; --spins) {
        std::this_thread::yield();  // race the cancel against live execution
      }
      handle.cancel();
    }

    ASSERT_EQ(handle.wait_for(kDrainDeadline), std::future_status::ready)
        << "iteration " << iter << " stalled\n"
        << tf.stall_report();
    bool threw = false;
    try {
      handle.get();
    } catch (const InjectedFault&) {
      threw = true;
    }
    if (threw) {
      EXPECT_TRUE(handle.is_cancelled());  // an error always drains
    }
    if (clean && !do_cancel) {
      EXPECT_FALSE(threw) << "iteration " << iter;
      EXPECT_EQ(executed.load(), total) << "iteration " << iter;
    } else {
      EXPECT_LE(executed.load(), total) << "iteration " << iter;
    }
    try {
      tf.wait_for_all();
    } catch (const InjectedFault&) {
    }
    EXPECT_EQ(tf.num_topologies(), 0u);
  }
}

// A framework re-run across faulting iterations: run_n stops at the first
// failing run, and the same graph must keep working once faults stop.
TEST_P(FaultModel, FrameworkSurvivesRepeatedFaults) {
  tf::Taskflow tf(make());
  tf::Framework fw;
  std::atomic<long> executed{0};
  std::atomic<bool> inject{false};
  auto rng = stream(10007);
  constexpr int n = 40;
  std::vector<tf::Task> tasks;
  tasks.reserve(n);
  for (int i = 0; i < n; ++i) {
    const bool thrower = rng.bernoulli(0.2);
    tasks.push_back(fw.emplace([&executed, &inject, thrower] {
      executed++;
      if (thrower && inject.load()) throw InjectedFault();
    }));
  }
  for (int v = 1; v < n; ++v) {
    tasks[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(v)))]
        .precede(tasks[static_cast<std::size_t>(v)]);
  }

  const int iters = support::repro_fault_iters();
  for (int iter = 0; iter < iters; ++iter) {
    inject = (iter % 2 == 1);
    auto handle = tf.run(fw);
    ASSERT_EQ(handle.wait_for(kDrainDeadline), std::future_status::ready)
        << "iteration " << iter << " stalled\n"
        << tf.stall_report();
    try {
      handle.get();
      EXPECT_FALSE(inject.load()) << "iteration " << iter;
    } catch (const InjectedFault&) {
      EXPECT_TRUE(inject.load()) << "iteration " << iter;
    }
  }
  // Faults off: a full clean pass still executes every task.
  inject = false;
  executed = 0;
  auto handle = tf.run(fw);
  ASSERT_EQ(handle.wait_for(kDrainDeadline), std::future_status::ready);
  handle.get();
  EXPECT_EQ(executed.load(), n);
  try {
    tf.wait_for_all();  // rereports the earlier injected failures on release
  } catch (const InjectedFault&) {
  }
}

// Throw/cancel photo finish: every iteration races a thrower against an
// external cancel.  Whatever wins, the topology must drain, and the handle
// must report one coherent outcome (exception iff get() throws).
TEST_P(FaultModel, ThrowVersusCancelRace) {
  const int iters = support::repro_fault_iters();
  for (int iter = 0; iter < iters; ++iter) {
    auto rng = stream(20011 + iter);
    tf::Taskflow tf(make(2));
    // If the cancel wins the race the root is skipped and never throws; if
    // the root wins, the exception is captured.  Either outcome must drain.
    auto root = tf.emplace([] { throw InjectedFault(); });
    for (int i = 0; i < 16; ++i) root.precede(tf.emplace([] {}));
    auto handle = tf.dispatch();
    for (std::uint64_t spins = rng.below(64); spins > 0; --spins) {
      std::this_thread::yield();
    }
    handle.cancel();
    ASSERT_EQ(handle.wait_for(kDrainDeadline), std::future_status::ready)
        << "iteration " << iter << " stalled\n"
        << tf.stall_report();
    EXPECT_TRUE(handle.is_cancelled());
    bool threw = false;
    try {
      handle.get();
    } catch (const InjectedFault&) {
      threw = true;
    }
    EXPECT_EQ(threw, handle.exception() != nullptr) << "iteration " << iter;
    try {
      tf.wait_for_all();
    } catch (const InjectedFault&) {
    }
  }
}

// Executor-centric multi-client fault storm (ISSUE 3): several client
// threads share one tf::Executor and hammer run / run_n / run_until / async
// while faults fire and external cancels race live runs.  Every client's
// every handle must drain (bounded wait), errors must stay confined to the
// handle that owns them, and the executor must end fully drained.
TEST_P(FaultModel, ConcurrentClientsSurviveFaultStorm) {
  constexpr int kClients = 8;
  const int iters = std::max(4, support::repro_fault_iters() / 4);
  tf::Executor executor(make());

  // A taskflow contended by every client, with a probabilistic thrower:
  // FIFO serialization must hold even while runs of it fail and drain.
  tf::Taskflow shared_flow;
  std::atomic<int> shared_in_flight{0};
  std::atomic<bool> shared_overlap{false};
  std::atomic<std::uint64_t> shared_ticket{0};
  // The probe balances its counter within one task: a throwing or cancelled
  // run skips the *rest* of its graph (skip-but-finalize drain), so a
  // two-node enter/exit pair would leak an increment and report a false
  // overlap.  The fault fires only after the slot is released.
  auto probe = shared_flow.emplace([&] {
    if (shared_in_flight.fetch_add(1) != 0) shared_overlap = true;
    for (int i = 0; i < 32; ++i) std::this_thread::yield();
    shared_in_flight.fetch_sub(1);
    if (shared_ticket.fetch_add(1) % 7 == 6) throw InjectedFault();
  });
  probe.precede(shared_flow.emplace([] {}));

  std::atomic<long> drained_handles{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto rng = stream(30013 + c);
      tf::Taskflow mine;
      std::atomic<long> mine_runs{0};
      std::uint64_t fault_mask = rng();
      auto head = mine.emplace([&, c] {
        const auto run = static_cast<std::uint64_t>(mine_runs.fetch_add(1));
        if ((fault_mask >> (run % 64)) & 1) throw InjectedFault();
      });
      // A joined subflow keeps the drain paths honest under concurrency too.
      auto tail = mine.emplace([&](tf::SubflowBuilder& sf) {
        sf.emplace([] {});
        sf.emplace([] {});
      });
      head.precede(tail);

      for (int iter = 0; iter < iters; ++iter) {
        std::vector<tf::ExecutionHandle> handles;
        handles.push_back(executor.run(mine));
        handles.push_back(executor.run(shared_flow));
        handles.push_back(executor.run_n(mine, 1 + rng.below(6)));
        const long target = mine_runs.load() + 3;
        handles.push_back(executor.run_until(
            mine, [&mine_runs, target] { return mine_runs.load() >= target; }));
        auto async_future =
            executor.async([iter]() noexcept { return iter; });
        if (rng.bernoulli(0.4)) {
          for (std::uint64_t spins = rng.below(100); spins > 0; --spins) {
            std::this_thread::yield();  // race the cancel against execution
          }
          handles[rng.below(handles.size())].cancel();
        }
        for (auto& h : handles) {
          ASSERT_EQ(h.wait_for(kDrainDeadline), std::future_status::ready)
              << "client " << c << " iteration " << iter << " stalled\n"
              << executor.stall_report();
          try {
            h.get();
          } catch (const InjectedFault&) {
            EXPECT_TRUE(h.is_cancelled());  // an error always drains
          }
          drained_handles++;
        }
        EXPECT_EQ(async_future.get(), iter);
      }
    });
  }
  for (auto& t : clients) t.join();

  executor.wait_for_all();
  EXPECT_FALSE(shared_overlap.load()) << "shared-taskflow runs overlapped";
  EXPECT_EQ(drained_handles.load(), static_cast<long>(kClients) * iters * 4);
  EXPECT_EQ(executor.num_topologies(), 0u);
  EXPECT_EQ(executor.num_asyncs(), 0u);
}

// Flaky-task mode (resilience tentpole): every task fails its first k
// attempts (k drawn per node from the seeded stream) and carries a retry
// budget.  Tasks whose k fits the budget must converge; tasks whose k
// exceeds it must degrade through their fallback - so under concurrent
// multi-client load, no handle may ever surface an error.
TEST_P(FaultModel, FlakyTasksConvergeUnderConcurrentLoad) {
  constexpr int kClients = 6;
  const int iters = std::max(3, support::repro_fault_iters() / 8);
  tf::Executor executor(make());
  std::atomic<long> fallbacks{0};
  std::atomic<long> expected_fallbacks{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto rng = stream(40009 + c);
      constexpr int kNodes = 12;
      tf::Taskflow flow;
      // One failure counter per node, reset before every run (the executor
      // resets the *policy* budget per run; the injected flakiness must
      // reset too so each run replays its fail-first-k script).
      std::vector<std::unique_ptr<std::atomic<int>>> counters;
      std::vector<int> fail_first;
      std::vector<tf::Task> tasks;
      for (int i = 0; i < kNodes; ++i) {
        counters.push_back(std::make_unique<std::atomic<int>>(0));
        // k in [0, 4]; retry budget allows 3 failures -> k == 4 must fall
        // back, everything else must converge.
        const int k = static_cast<int>(rng.below(5));
        fail_first.push_back(k);
        std::atomic<int>* counter = counters.back().get();
        tf::RetryPolicy policy;
        policy.max_attempts = 4;
        policy.backoff = rng.bernoulli(0.5) ? 500us : 0us;  // wheel + direct
        policy.jitter = 0.5;
        auto task = flow.emplace([counter, k] {
          if (counter->fetch_add(1) < k) throw InjectedFault();
        });
        task.retry(policy);
        task.fallback([&fallbacks] { fallbacks++; });
        tasks.push_back(task);
      }
      for (int v = 1; v < kNodes; ++v) {  // forward edges: acyclic
        tasks[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(v)))]
            .precede(tasks[static_cast<std::size_t>(v)]);
      }
      const long unlucky = static_cast<long>(
          std::count(fail_first.begin(), fail_first.end(), 4));

      for (int iter = 0; iter < iters; ++iter) {
        for (auto& counter : counters) counter->store(0);
        expected_fallbacks += unlucky;
        auto handle = executor.run(flow);
        ASSERT_EQ(handle.wait_for(kDrainDeadline), std::future_status::ready)
            << "client " << c << " iteration " << iter << " stalled\n"
            << executor.stall_report();
        EXPECT_NO_THROW(handle.get()) << "client " << c << " iteration " << iter;
        EXPECT_FALSE(handle.is_cancelled());
      }
    });
  }
  for (auto& t : clients) t.join();
  executor.wait_for_all();
  EXPECT_EQ(fallbacks.load(), expected_fallbacks.load());
  EXPECT_EQ(executor.num_topologies(), 0u);
}

// Overload storm (ISSUE 7): concurrent clients hammer an admission-controlled
// executor with randomized options - bounds, watermark, concurrency cap,
// breaker - through every submission flavor (blocking, admission-timeout,
// reject, try_run, priorities, deadlines) with random cancels and a 25%
// chance of a mid-storm shutdown.  Every handle must drain within the
// deadline and the admission counters must balance the per-client outcome
// tallies exactly: an admitted run resolves as success, shed, timeout, or
// fault - never silently, never twice.
TEST_P(FaultModel, OverloadStormDrainsWithCoherentOutcomes) {
  constexpr int kClients = 5;
  constexpr int kRounds = 16;
  const int iters = std::max(3, support::repro_fault_iters() / 8);

  for (int iter = 0; iter < iters; ++iter) {
    auto rng = stream(50021 + iter);
    tf::ExecutorOptions opts;
    opts.max_pending_topologies = 6 + rng.below(6);
    opts.max_pending_per_client = 2 + rng.below(3);
    opts.shed_watermark = rng.bernoulli(0.7) ? 3 + rng.below(5) : 0;
    opts.max_concurrent_topologies = rng.bernoulli(0.5) ? 1 + rng.below(3) : 0;
    opts.fairness_quantum = 1 + rng.below(64);
    if (rng.bernoulli(0.5)) {
      opts.breaker_threshold = 2 + static_cast<int>(rng.below(3));
      opts.breaker_cooldown = 1ms;
    }
    tf::Executor executor(make(2 + rng.below(3)), opts);
    const bool chaos = rng.bernoulli(0.25);
    const bool chaos_abort = rng.bernoulli(0.5);

    std::atomic<long> ok{0}, shed{0}, rejected{0}, empty_try{0}, timed{0},
        faulted{0}, shut{0};
    std::vector<std::uint64_t> seeds;
    for (int c = 0; c < kClients; ++c) seeds.push_back(rng());

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto crng = support::Xoshiro256(seeds[static_cast<std::size_t>(c)]);
        tf::Taskflow mine;
        std::atomic<std::uint64_t> runs{0};
        const std::uint64_t fault_mask = crng();
        auto head = mine.emplace([&] {
          for (int i = 0; i < 16; ++i) std::this_thread::yield();
          if ((fault_mask >> (runs.fetch_add(1) % 64)) & 1) throw InjectedFault();
        });
        head.precede(mine.emplace([] {}));

        std::vector<tf::ExecutionHandle> handles;
        for (int round = 0; round < kRounds; ++round) {
          tf::RunPolicy policy;
          policy.priority = static_cast<int>(crng.below(3));
          try {
            switch (crng.below(4)) {
              case 0: {
                if (auto h = executor.try_run(mine, policy)) {
                  handles.push_back(*h);
                } else {
                  empty_try++;  // overload - or shutdown, in a chaos round
                }
                break;
              }
              case 1: {
                if (crng.bernoulli(0.3)) policy.admission_timeout = 2ms;
                handles.push_back(executor.run_n(mine, 1 + crng.below(2), policy));
                break;
              }
              case 2: {
                policy.admission = tf::AdmissionPolicy::reject;
                handles.push_back(executor.run(mine, policy));
                break;
              }
              default: {
                policy.timeout = 1ms;  // a deadline racing the queue + run
                handles.push_back(executor.run(mine, policy));
                break;
              }
            }
          } catch (const tf::ShutdownError&) {
            shut++;
            break;  // the executor is gone for good: stop submitting
          } catch (const tf::OverloadError&) {
            rejected++;  // reject policy, admission timeout, or open breaker
          }
          if (crng.bernoulli(0.2) && !handles.empty()) {
            handles[crng.below(handles.size())].cancel();
          }
        }
        for (auto& h : handles) {
          ASSERT_EQ(h.wait_for(kDrainDeadline), std::future_status::ready)
              << "client " << c << " iteration " << iter << " stalled\n"
              << executor.stall_report();
          try {
            h.get();
            ok++;
          } catch (const tf::TimeoutError&) {
            timed++;
          } catch (const tf::OverloadError&) {
            shed++;  // a load-shed run: completed without executing
          } catch (const InjectedFault&) {
            faulted++;
          }
        }
      });
    }
    if (chaos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + rng.below(8)));
      executor.shutdown(chaos_abort ? tf::ShutdownMode::abort
                                    : tf::ShutdownMode::drain);
    }
    for (auto& t : clients) t.join();
    executor.wait_for_all();

    // Conservation: every admitted run resolved exactly once, every shed was
    // counted, and nothing is left in flight.
    EXPECT_EQ(executor.num_shed(), static_cast<std::size_t>(shed.load()))
        << "iteration " << iter;
    EXPECT_EQ(executor.num_admitted(),
              static_cast<std::size_t>(ok.load() + shed.load() + timed.load() +
                                       faulted.load()))
        << "iteration " << iter;
    if (!chaos) {
      // Without a shutdown in the mix, an empty try_run is always an
      // overload rejection and the executor counted it as one.
      EXPECT_EQ(executor.num_rejected(),
                static_cast<std::size_t>(rejected.load() + empty_try.load()))
          << "iteration " << iter;
    }
    EXPECT_EQ(executor.num_topologies(), 0u) << "iteration " << iter;
  }
}

// ---------------------------------------------------------------------------
// Allocation-failure injection (ISSUE 9 satellite): detail::arm_alloc_failure
// makes the n-th GraphArena slab acquisition throw std::bad_alloc.  A failure
// on a worker thread (subflow spawn, module instantiation) must ride the
// skip-but-finalize drain to the future; a failure on the builder thread
// throws straight to the caller.  Either way the executor survives.
// ---------------------------------------------------------------------------

TEST(AllocFailure, BuildTimeSlabGrowthThrowsToTheCallerAndDisarms) {
  tf::Taskflow flow;  // arena is lazy: no slab yet
  tf::detail::arm_alloc_failure(0);
  EXPECT_THROW((void)flow.emplace([] {}), std::bad_alloc);
  // One-shot: the injector disarmed itself when it fired.
  std::atomic<int> ran{0};
  EXPECT_NO_THROW((void)flow.emplace([&] { ran++; }));
  tf::detail::disarm_alloc_failure();
  tf::Executor executor(1);
  EXPECT_NO_THROW(executor.run(flow).get());
  EXPECT_EQ(ran.load(), 1);
}

TEST_P(FaultModel, AllocFailureDuringSubflowSpawnReachesTheFuture) {
  tf::Taskflow tf(make(2));
  tf::detail::disarm_alloc_failure();

  std::atomic<bool> gate{false};
  tf::Taskflow flow;
  std::atomic<int> kids_ran{0};
  auto pre = flow.emplace([&] {
    while (!gate.load()) std::this_thread::yield();
  });
  auto dyn = flow.emplace([&](tf::SubflowBuilder& sf) {
    for (int i = 0; i < 64; ++i) sf.emplace([&] { kids_ran++; });
  });
  pre.precede(dyn);

  auto h = tf.run(flow);  // build + dispatch done: nodes already have slabs
  // The next slab acquisition anywhere is the subflow child graph's first
  // node, allocated on the worker mid-run.
  tf::detail::arm_alloc_failure(0);
  gate = true;
  ASSERT_EQ(h.wait_for(kDrainDeadline), std::future_status::ready);
  EXPECT_THROW(h.get(), std::bad_alloc);
  tf::detail::disarm_alloc_failure();

  // Survivable: the same executor keeps running clean work, and the same
  // flow re-runs successfully once allocation recovers.
  auto h2 = tf.run(flow);
  ASSERT_EQ(h2.wait_for(kDrainDeadline), std::future_status::ready);
  EXPECT_NO_THROW(h2.get());
  EXPECT_EQ(kids_ran.load(), 64);
}

TEST_P(FaultModel, AllocFailureDuringModuleInstantiationReachesTheFuture) {
  tf::Taskflow tf(make(2));
  tf::detail::disarm_alloc_failure();

  std::atomic<bool> gate{false};
  std::atomic<int> target_ran{0};
  tf::Taskflow target;
  auto t0 = target.emplace([&] { target_ran++; });
  auto t1 = target.emplace([&] { target_ran++; });
  t0.precede(t1);

  tf::Taskflow parent;
  auto pre = parent.emplace([&] {
    while (!gate.load()) std::this_thread::yield();
  });
  auto mod = parent.composed_of(target).name("alloc-victim");
  pre.precede(mod);

  auto h = tf.run(parent);
  // Module expansion deep-copies `target` into a fresh child graph on the
  // worker; its first node allocation is the next slab acquisition.
  tf::detail::arm_alloc_failure(0);
  gate = true;
  ASSERT_EQ(h.wait_for(kDrainDeadline), std::future_status::ready);
  EXPECT_THROW(h.get(), std::bad_alloc);
  EXPECT_EQ(target_ran.load(), 0);  // the expansion never materialized
  tf::detail::disarm_alloc_failure();

  auto h2 = tf.run(parent);
  ASSERT_EQ(h2.wait_for(kDrainDeadline), std::future_status::ready);
  EXPECT_NO_THROW(h2.get());
  EXPECT_EQ(target_ran.load(), 2);
}

INSTANTIATE_TEST_SUITE_P(Executors, FaultModel,
                         ::testing::Values("work_stealing", "simple"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
