// DOT dump (paper §III-G, Fig. 5): graph visualization output.
#include "taskflow/dot.hpp"
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

int count_occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Dot, EmptyGraph) {
  tf::Taskflow tf(1);
  const auto dot = tf.dump();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Dot, NamedNodesAndEdges) {
  tf::Taskflow tf(1);
  auto A = tf.emplace([] {}).name("A");
  auto B = tf.emplace([] {}).name("B");
  auto C = tf.emplace([] {}).name("C");
  A.precede(B, C);
  const auto dot = tf.dump();
  EXPECT_NE(dot.find("label=\"A\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"B\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"C\""), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "->"), 2);
}

TEST(Dot, UnnamedNodesGetPointerLabels) {
  tf::Taskflow tf(1);
  tf.emplace([] {});
  const auto dot = tf.dump();
  EXPECT_NE(dot.find("label=\"p0x"), std::string::npos);
}

TEST(Dot, DumpDoesNotConsumeGraph) {
  tf::Taskflow tf(1);
  tf.emplace([] {}).name("X");
  (void)tf.dump();
  EXPECT_EQ(tf.num_nodes(), 1u);
}

TEST(Dot, SubflowRendersAsNestedCluster) {
  // Reproduces the structure of paper Fig. 5: A spawns A1, A2; A2 spawns
  // A2_1, A2_2.  Dumped after execution via dump_topologies().
  tf::Taskflow tf(2);
  auto A = tf.emplace([](tf::SubflowBuilder& sf) {
    auto A1 = sf.emplace([] {}).name("A1");
    auto A2 = sf.emplace([](tf::SubflowBuilder& sf2) {
      sf2.emplace([] {}).name("A2_1");
      sf2.emplace([] {}).name("A2_2");
    });
    A2.name("A2");
    A1.precede(A2);
  });
  A.name("A");
  tf.silent_dispatch();
  tf.wait_for_topologies();

  const auto dot = tf.dump_topologies();
  EXPECT_EQ(count_occurrences(dot, "subgraph"), 2);  // two nested clusters
  EXPECT_NE(dot.find("Subflow: A"), std::string::npos);
  EXPECT_NE(dot.find("Subflow: A2"), std::string::npos);
  EXPECT_NE(dot.find("label=\"A1\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"A2_1\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"A2_2\""), std::string::npos);
  tf.wait_for_all();
}

TEST(Dot, TitleAppearsInOutput) {
  tf::Graph g;
  g.emplace_back().set_name("only");
  const auto dot = tf::dump_dot(g, "MyTitle");
  EXPECT_NE(dot.find("digraph \"MyTitle\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"only\""), std::string::npos);
}

TEST(Dot, QuotesAndBackslashesInNamesAreEscaped) {
  tf::Graph g;
  g.emplace_back().set_name("say \"hi\"");
  g.emplace_back().set_name("back\\slash");
  const auto dot = tf::dump_dot(g, "a \"quoted\" \\title");
  EXPECT_NE(dot.find("digraph \"a \\\"quoted\\\" \\\\title\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"back\\\\slash\""), std::string::npos);
  // No naked inner quote may survive: every label stays one quoted token.
  EXPECT_EQ(dot.find("label=\"say \"hi"), std::string::npos);
}

TEST(Dot, ConditionEdgesAreDashedWithBranchIndexLabels) {
  tf::Taskflow tf(1);
  auto cond = tf.emplace([] { return 0; }).name("chooser");
  auto yes = tf.emplace([] {}).name("yes");
  auto no = tf.emplace([] {}).name("no");
  auto pre = tf.emplace([] {}).name("pre");
  pre.precede(cond);
  cond.precede(yes);
  cond.precede(no);
  const auto dot = tf.dump();
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed label=\"0\"]"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed label=\"1\"]"), std::string::npos);
  // Only the two condition out-edges are weak; pre -> chooser stays solid.
  EXPECT_EQ(count_occurrences(dot, "style=dashed"), 2);
  EXPECT_EQ(count_occurrences(dot, "->"), 3);
}

TEST(Dot, ModuleRendersAsBoxedCluster) {
  tf::Taskflow target;
  auto in = target.emplace([] {}).name("inner_a");
  auto out = target.emplace([] {}).name("inner_b");
  in.precede(out);
  tf::Taskflow parent(1);
  auto pre = parent.emplace([] {}).name("pre");
  auto mod = parent.composed_of(target).name("mod");
  pre.precede(mod);
  const auto dot = parent.dump();
  EXPECT_NE(dot.find("shape=box3d"), std::string::npos);
  EXPECT_NE(dot.find("Module: mod"), std::string::npos);
  EXPECT_NE(dot.find("label=\"inner_a\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"inner_b\""), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "subgraph"), 1);
}

TEST(Dot, SharedTargetRendersPerModuleWithDistinctIds) {
  // One target composed twice: both clusters must render, and their node
  // ids must differ (same pointer, different module-id prefix) so DOT does
  // not merge the two copies.
  tf::Taskflow target;
  target.emplace([] {}).name("shared_task");
  tf::Taskflow parent(1);
  auto m1 = parent.composed_of(target).name("first");
  auto m2 = parent.composed_of(target).name("second");
  m1.precede(m2);
  const auto dot = parent.dump();
  EXPECT_EQ(count_occurrences(dot, "subgraph"), 2);
  EXPECT_NE(dot.find("Module: first"), std::string::npos);
  EXPECT_NE(dot.find("Module: second"), std::string::npos);
  EXPECT_EQ(count_occurrences(dot, "label=\"shared_task\""), 2);
}

TEST(Dot, ModuleNamesWithQuotesAreEscapedInClusterLabels) {
  tf::Taskflow target;
  target.emplace([] {}).name("body");
  tf::Taskflow parent(1);
  parent.composed_of(target).name("mod \"v2\" \\beta");
  const auto dot = parent.dump();
  EXPECT_NE(dot.find("label=\"Module: mod \\\"v2\\\" \\\\beta\""),
            std::string::npos);
  // No naked inner quote may survive inside the cluster label.
  EXPECT_EQ(dot.find("label=\"Module: mod \"v2"), std::string::npos);
}

TEST(Dot, EdgesPointFromPredecessorToSuccessor) {
  tf::Graph g;
  auto& a = g.emplace_back();
  auto& b = g.emplace_back();
  a.set_name("src");
  b.set_name("dst");
  a.precede(b);
  const auto dot = tf::dump_dot(g);
  // Edge must reference both node ids in one line, source first.
  const auto arrow = dot.find("->");
  ASSERT_NE(arrow, std::string::npos);
  const auto line_start = dot.rfind('\n', arrow);
  const auto line_end = dot.find('\n', arrow);
  const auto line = dot.substr(line_start + 1, line_end - line_start - 1);
  EXPECT_LT(line.find('p'), line.find("->"));
}

}  // namespace
