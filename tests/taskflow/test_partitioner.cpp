// Partitioner protocol unit tests (DESIGN.md §9): the Static/Dynamic/Guided
// partitioners must hand out disjoint [beg, end) ranges that exactly tile the
// iteration space, from any number of threads, and the cursor must support
// the reset-per-run protocol the algorithm source tasks rely on.
#include "taskflow/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace {

using tf::detail::IndexRange;
using tf::detail::RangeCursor;

/// Single-threaded drain: collect every range `part` hands out.
template <typename P>
std::vector<IndexRange> drain(const P& part, std::size_t total, std::size_t workers) {
  RangeCursor cursor(total, workers);
  std::vector<IndexRange> ranges;
  IndexRange r;
  while (part.grab(cursor, r)) ranges.push_back(r);
  return ranges;
}

/// The ranges must tile [0, total) exactly: disjoint, gap-free, in-bounds.
void expect_tiles(const std::vector<IndexRange>& ranges, std::size_t total) {
  auto sorted = ranges;
  std::sort(sorted.begin(), sorted.end(),
            [](const IndexRange& a, const IndexRange& b) { return a.begin < b.begin; });
  std::size_t expected_begin = 0;
  for (const IndexRange& r : sorted) {
    ASSERT_EQ(r.begin, expected_begin);
    ASSERT_GT(r.end, r.begin);  // empty ranges are never handed out
    expected_begin = r.end;
  }
  ASSERT_EQ(expected_begin, total);
}

TEST(StaticPartitioner, EvenSplitWhenChunkIsZero) {
  tf::StaticPartitioner part;  // chunk 0 = even split
  const auto ranges = drain(part, 100, 4);
  expect_tiles(ranges, 100);
  ASSERT_EQ(ranges.size(), 4u);  // ceil(100/4) = 25 per range
  for (const auto& r : ranges) EXPECT_EQ(r.size(), 25u);
}

TEST(StaticPartitioner, ExplicitChunkTilesWithRemainder) {
  tf::StaticPartitioner part(30);
  const auto ranges = drain(part, 100, 4);
  expect_tiles(ranges, 100);
  ASSERT_EQ(ranges.size(), 4u);  // 30 + 30 + 30 + 10
  EXPECT_EQ(ranges.back().size(), 10u);
}

TEST(StaticPartitioner, GrainNeverZero) {
  tf::StaticPartitioner part;
  EXPECT_EQ(part.grain(3, 8), 1u);  // more workers than elements
  EXPECT_EQ(part.grain(0, 4), 1u);
  EXPECT_EQ(tf::StaticPartitioner{7}.grain(100, 4), 7u);
}

TEST(StaticPartitioner, RangesHintMatchesDrain) {
  for (std::size_t total : {1u, 7u, 100u, 1001u}) {
    for (std::size_t chunk : {0u, 1u, 3u, 64u}) {
      tf::StaticPartitioner part(chunk);
      EXPECT_EQ(part.ranges_hint(total, 4), drain(part, total, 4).size())
          << "total=" << total << " chunk=" << chunk;
    }
  }
}

TEST(DynamicPartitioner, DefaultChunkIsOneElementPerGrab) {
  tf::DynamicPartitioner part;
  const auto ranges = drain(part, 17, 4);
  expect_tiles(ranges, 17);
  ASSERT_EQ(ranges.size(), 17u);
}

TEST(DynamicPartitioner, ZeroChunkIsCoercedToOne) {
  tf::DynamicPartitioner part(0);
  EXPECT_EQ(part.chunk(), 1u);
  expect_tiles(drain(part, 5, 2), 5);
}

TEST(DynamicPartitioner, ChunkedTiling) {
  tf::DynamicPartitioner part(64);
  const auto ranges = drain(part, 1000, 4);
  expect_tiles(ranges, 1000);
  EXPECT_EQ(ranges.size(), part.ranges_hint(1000, 4));
}

TEST(GuidedPartitioner, ChunksDecayToMinChunk) {
  tf::GuidedPartitioner part(4);
  const auto ranges = drain(part, 10000, 4);
  expect_tiles(ranges, 10000);
  // First grab: remaining / (2W) = 10000 / 8 = 1250.
  EXPECT_EQ(ranges.front().size(), 1250u);
  // Sequentially drained, sizes never grow, and the floor is min_chunk
  // (except possibly the final remainder).
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i].size(), ranges[i - 1].size());
  }
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    EXPECT_GE(ranges[i].size(), 4u);
  }
}

TEST(GuidedPartitioner, HandsOutFarFewerRangesThanDynamic) {
  tf::GuidedPartitioner part(1);
  const auto ranges = drain(part, 1 << 20, 4);
  expect_tiles(ranges, 1 << 20);
  // Geometric decay: O(W log N) grabs instead of N.
  EXPECT_LT(ranges.size(), 300u);
}

TEST(GuidedPartitioner, TinyDomains) {
  tf::GuidedPartitioner part;
  expect_tiles(drain(part, 1, 8), 1);
  expect_tiles(drain(part, 3, 8), 3);
  EXPECT_EQ(part.ranges_hint(3, 8), 3u);   // capped by the domain
  EXPECT_EQ(part.ranges_hint(100, 8), 8u);  // one worker slot each
}

TEST(RangeCursorTest, ResetReplaysTheDomain) {
  // The algorithm source tasks reset the cursor at the start of every run
  // (run_n re-runs the same graph); a drained cursor must replay in full.
  tf::GuidedPartitioner part;
  RangeCursor cursor(1000, 4);
  IndexRange r;
  std::size_t covered = 0;
  while (part.grab(cursor, r)) covered += r.size();
  EXPECT_EQ(covered, 1000u);
  EXPECT_FALSE(part.grab(cursor, r));  // drained stays drained...
  cursor.reset();                      // ...until the next run resets it
  covered = 0;
  while (part.grab(cursor, r)) covered += r.size();
  EXPECT_EQ(covered, 1000u);
}

TEST(RangeCursorTest, ZeroWorkersCoercedToOne) {
  RangeCursor cursor(10, 0);
  EXPECT_EQ(cursor.workers, 1u);
}

/// Concurrent grab stress: T threads drain one cursor; every index must be
/// claimed exactly once.  This is the new concurrency surface the sanitizer
/// gates exercise.
template <typename P>
void concurrent_tiling(const P& part, std::size_t total, std::size_t threads) {
  RangeCursor cursor(total, threads);
  std::vector<std::atomic<int>> claims(total);
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      IndexRange r;
      while (part.grab(cursor, r)) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          claims[i].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(claims[i].load(), 1) << "index " << i << " claimed != once";
  }
}

TEST(PartitionerConcurrency, StaticTilesExactlyOnce) {
  concurrent_tiling(tf::StaticPartitioner{}, 100000, 4);
  concurrent_tiling(tf::StaticPartitioner{17}, 100000, 4);
}

TEST(PartitionerConcurrency, DynamicTilesExactlyOnce) {
  concurrent_tiling(tf::DynamicPartitioner{7}, 100000, 4);
}

TEST(PartitionerConcurrency, GuidedTilesExactlyOnce) {
  concurrent_tiling(tf::GuidedPartitioner{}, 100000, 4);
  concurrent_tiling(tf::GuidedPartitioner{32}, 100000, 8);
}

TEST(PartitionerTrait, GatesTheAlgorithmOverloads) {
  static_assert(tf::detail::is_partitioner_v<tf::StaticPartitioner>);
  static_assert(tf::detail::is_partitioner_v<tf::DynamicPartitioner>);
  static_assert(tf::detail::is_partitioner_v<tf::GuidedPartitioner>);
  static_assert(tf::detail::is_partitioner_v<const tf::GuidedPartitioner&>);
  // Plain integers must NOT qualify - that is what keeps the legacy
  // `parallel_for(beg, end, f, chunk)` overloads resolvable.
  static_assert(!tf::detail::is_partitioner_v<int>);
  static_assert(!tf::detail::is_partitioner_v<std::size_t>);
  SUCCEED();
}

}  // namespace
