// Shutdown-under-storm interplay (ISSUE 9 satellite): shutdown(drain) and
// shutdown(abort) racing live admission machinery - parked backpressure
// submitters, pending runs above the shed watermark, and half-open breaker
// probes.  The contract under test: every submitter unblocks, every handle
// handed out becomes ready, and the admission counter identities hold on
// both backends.  Every wait is bounded so a lost wake-up fails loudly.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/env.hpp"
#include "support/rng.hpp"

namespace {

using namespace std::chrono_literals;

constexpr auto kDeadline = 120s;

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

// Cancel-aware park (aborted runs must drain promptly).
void spin_until(const std::atomic<bool>& gate) {
  while (!gate.load() && !tf::this_task::is_cancelled()) {
    std::this_thread::yield();
  }
}

struct GateOpener {
  explicit GateOpener(std::atomic<bool>& g) : gate(g) {}
  ~GateOpener() { gate.store(true); }
  std::atomic<bool>& gate;
};

class ShutdownStorm : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 2) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
};

// ---------------------------------------------------------------------------
// Parked backpressure submitters: shutdown(drain) wakes every one of them
// with ShutdownError while the in-flight run finishes normally.
// ---------------------------------------------------------------------------

TEST_P(ShutdownStorm, DrainUnblocksEveryParkedSubmitter) {
  tf::ExecutorOptions opts;
  opts.max_pending_topologies = 1;
  tf::Executor executor(make(2), opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);

  tf::Taskflow gated;
  gated.emplace([&] { spin_until(gate); });
  auto h0 = executor.run(gated);  // occupies the single admission slot

  constexpr int kSubmitters = 4;
  std::atomic<int> parked{0};
  std::atomic<int> shutdown_rejected{0};
  std::atomic<int> admitted_late{0};
  std::vector<std::thread> submitters;
  std::vector<tf::Taskflow> flows(kSubmitters);
  for (int i = 0; i < kSubmitters; ++i) {
    flows[static_cast<std::size_t>(i)].emplace([] {});
    submitters.emplace_back([&, i] {
      parked++;
      try {
        // AdmissionPolicy::block with no timeout: parks until capacity or
        // shutdown.  The slot never frees before shutdown (the gate is
        // closed), so every submitter must leave through ShutdownError.
        auto h = executor.run(flows[static_cast<std::size_t>(i)]);
        admitted_late++;
        h.wait();
      } catch (const tf::ShutdownError&) {
        shutdown_rejected++;
      }
    });
  }
  while (parked.load() < kSubmitters) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);  // let them reach the backpressure wait

  // drain blocks until the gated run retires, so open the gate from the
  // side once shutdown is underway.
  std::thread open_later([&] {
    std::this_thread::sleep_for(20ms);
    gate = true;
  });
  executor.shutdown(tf::ShutdownMode::drain);
  open_later.join();
  for (auto& t : submitters) t.join();

  EXPECT_EQ(shutdown_rejected.load() + admitted_late.load(), kSubmitters);
  ASSERT_EQ(h0.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(h0.get());
  // Shutdown rejections are not overload: the reject counter stays clean,
  // and the admitted count covers exactly the runs that got in.
  EXPECT_EQ(executor.num_rejected(), 0u);
  EXPECT_EQ(executor.num_admitted(),
            1u + static_cast<std::size_t>(admitted_late.load()));
  EXPECT_EQ(executor.num_topologies(), 0u);
}

// ---------------------------------------------------------------------------
// Pending sheds: shutdown(abort) readies every handle - the started run, the
// queued-over-watermark sheds that already failed, and the still-queued rest.
// ---------------------------------------------------------------------------

TEST_P(ShutdownStorm, AbortReadiesShedAndQueuedHandles) {
  tf::ExecutorOptions opts;
  opts.shed_watermark = 2;
  tf::Executor executor(make(1), opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);

  tf::Taskflow gated;
  std::atomic<int> ran{0};
  gated.emplace([&] {
    ran++;
    spin_until(gate);
  });

  std::vector<tf::Taskflow> flows(6);
  std::vector<tf::ExecutionHandle> handles;
  handles.push_back(executor.run(gated));  // started: not sheddable
  for (auto& flow : flows) {
    flow.emplace([&] { ran++; });
    handles.push_back(executor.run(flow));  // queued; overflow sheds lowest
  }

  executor.shutdown(tf::ShutdownMode::abort);

  // Every handle handed out is ready the moment shutdown returns.
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (auto& h : handles) {
    ASSERT_EQ(h.wait_for(0s), std::future_status::ready);
    try {
      h.get();
      ++ok;
    } catch (const tf::OverloadError&) {
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, handles.size());
  EXPECT_EQ(executor.num_shed(), shed);
  EXPECT_EQ(executor.num_admitted(), handles.size());
  EXPECT_EQ(executor.num_rejected(), 0u);
  EXPECT_EQ(executor.num_topologies(), 0u);
  EXPECT_THROW((void)executor.run(gated), tf::ShutdownError);
}

// ---------------------------------------------------------------------------
// Half-open breaker probe racing shutdown(drain): the in-flight probe
// retires normally, its handle is ready, and the counters stay consistent.
// ---------------------------------------------------------------------------

TEST_P(ShutdownStorm, HalfOpenBreakerProbeSurvivesDrain) {
  tf::ExecutorOptions opts;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown = 1ms;
  tf::Executor executor(make(2), opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);

  tf::Taskflow flaky;
  std::atomic<bool> heal{false};
  flaky.emplace([&] {
    if (!heal.load()) throw Boom{};
    spin_until(gate);  // the healed probe parks so shutdown races it
  });

  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(executor.run(flaky).get(), Boom);
  }
  EXPECT_EQ(executor.num_breaker_trips(), 1u);
  EXPECT_THROW((void)executor.run(flaky), tf::BreakerOpenError);  // open

  std::this_thread::sleep_for(2ms);  // past the cooldown: half-open
  heal = true;
  auto probe = executor.run(flaky);  // the single half-open probe, parked

  std::thread open_later([&] {
    std::this_thread::sleep_for(10ms);
    gate = true;
  });
  executor.shutdown(tf::ShutdownMode::drain);
  open_later.join();

  ASSERT_EQ(probe.wait_for(0s), std::future_status::ready);
  EXPECT_NO_THROW(probe.get());
  // Two failing runs + the probe were admitted; the BreakerOpenError while
  // open was a door rejection.
  EXPECT_EQ(executor.num_admitted(), 3u);
  EXPECT_EQ(executor.num_rejected(), 1u);
  EXPECT_THROW((void)executor.run(flaky), tf::ShutdownError);
}

// ---------------------------------------------------------------------------
// Randomized storm: submitter threads race a mid-storm shutdown of either
// mode.  Deterministic per REPRO_FAULT_SEED; every handle must be ready
// after shutdown and the counter identities must balance exactly.
// ---------------------------------------------------------------------------

TEST_P(ShutdownStorm, MidStormShutdownAccountsEveryHandle) {
  const int iters = std::max(4, support::repro_fault_iters() / 4);
  for (int iter = 0; iter < iters; ++iter) {
    support::Xoshiro256 rng(support::repro_fault_seed() +
                            0x9e3779b97f4a7c15ULL *
                                static_cast<std::uint64_t>(iter));
    const bool abort_mode = (iter % 2) == 1;

    tf::ExecutorOptions opts;
    opts.max_pending_topologies = 4;
    opts.shed_watermark = 3;
    opts.breaker_threshold = 3;
    opts.breaker_cooldown = 500us;
    tf::Executor executor(make(2), opts);

    constexpr int kThreads = 6;
    constexpr int kRequests = 24;
    std::atomic<std::uint64_t> door_rejected{0};
    std::atomic<std::uint64_t> door_shutdown{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> faulted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<int> never_ready{0};  // gtest asserts stay on the main thread

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      const std::uint64_t seed = rng();
      threads.emplace_back([&, t, seed] {
        support::Xoshiro256 mine(seed);
        // One flow per thread: the per-taskflow breaker and per-client
        // bounds engage, and reuse exercises topology recycling mid-race.
        tf::Taskflow flow;
        std::atomic<bool> throws{false};
        flow.emplace([&] {
          const auto end =
              std::chrono::steady_clock::now() + std::chrono::microseconds(20);
          while (std::chrono::steady_clock::now() < end &&
                 !tf::this_task::is_cancelled()) {
          }
          if (throws.load(std::memory_order_relaxed)) throw Boom{};
        });
        std::vector<tf::ExecutionHandle> handles;
        handles.reserve(kRequests);
        for (int r = 0; r < kRequests; ++r) {
          throws.store(mine.bernoulli(0.1), std::memory_order_relaxed);
          tf::RunPolicy policy;
          policy.priority = static_cast<int>(mine.below(3));
          policy.admission = mine.bernoulli(0.5)
                                 ? tf::AdmissionPolicy::block
                                 : tf::AdmissionPolicy::reject;
          if (policy.admission == tf::AdmissionPolicy::block) {
            policy.admission_timeout = std::chrono::milliseconds(2);
          }
          try {
            handles.push_back(executor.run(flow, policy));
          } catch (const tf::ShutdownError&) {
            door_shutdown++;
            break;  // the server is gone: stop submitting
          } catch (const tf::OverloadError&) {
            door_rejected++;  // at-capacity, expired wait, or open breaker
          }
          // `throws` is only safe to flip after the handle resolves; the
          // window here is one in-flight run per thread.
          if (!handles.empty() &&
              handles.back().wait_for(kDeadline) != std::future_status::ready) {
            never_ready++;
            return;
          }
        }
        for (auto& h : handles) {
          if (h.wait_for(kDeadline) != std::future_status::ready) {
            never_ready++;
            return;
          }
          try {
            h.get();
            ok++;
          } catch (const Boom&) {
            faulted++;
          } catch (const tf::OverloadError&) {
            shed++;
          }
        }
      });
    }

    // Pull the rug mid-storm at a random point.
    std::this_thread::sleep_for(
        std::chrono::microseconds(100 + rng.below(2000)));
    executor.shutdown(abort_mode ? tf::ShutdownMode::abort
                                 : tf::ShutdownMode::drain);
    for (auto& t : threads) t.join();

    // Every handle handed out became ready within the (generous) deadline.
    ASSERT_EQ(never_ready.load(), 0) << "iteration " << iter;
    // Conservation at quiescence: every admitted run resolved exactly once;
    // door rejections (overload, NOT shutdown) match the reject counter.
    EXPECT_EQ(executor.num_admitted(), ok.load() + faulted.load() + shed.load())
        << "iteration " << iter;
    EXPECT_EQ(executor.num_shed(), shed.load()) << "iteration " << iter;
    EXPECT_EQ(executor.num_rejected(), door_rejected.load())
        << "iteration " << iter;
    EXPECT_EQ(executor.num_topologies(), 0u) << "iteration " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ShutdownStorm,
                         ::testing::Values("work_stealing", "simple"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
