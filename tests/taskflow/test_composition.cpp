// Composable module tasks (ISSUE 8 tentpole): composed_of(target) embeds a
// non-owning reference to another Taskflow's graph; at execution the module
// deep-copies the target into its own subgraph (so one target can appear in
// several concurrently running parents) and runs it as a joined subflow.
// The suite pins reuse across parents, nesting, loop re-expansion, the
// move-only-callable diagnostic, and interaction with admission shedding.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

using namespace std::chrono_literals;

namespace {

constexpr auto kDeadline = std::chrono::seconds(30);

// Cancel-aware park, so aborted/shed runs still drain promptly.
void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load() && !tf::this_task::is_cancelled()) std::this_thread::yield();
}

// Opens the gate on scope exit even when an assertion bails out early, so
// the executor destructor can always drain.
struct GateOpener {
  explicit GateOpener(std::atomic<bool>& g) : gate(g) {}
  ~GateOpener() { gate.store(true); }
  std::atomic<bool>& gate;
};

class Composition : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 4) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
};

TEST_P(Composition, ModuleRunsTheTargetGraph) {
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> order{0};
  std::atomic<int> first{-1};
  std::atomic<int> second{-1};
  auto a = target.emplace([&] { first = order.fetch_add(1); });
  auto b = target.emplace([&] { second = order.fetch_add(1); });
  a.precede(b);  // the target's internal ordering must be preserved

  tf::Taskflow parent;
  std::atomic<int> before{-1};
  std::atomic<int> after{-1};
  auto pre = parent.emplace([&] { before = order.fetch_add(1); });
  auto mod = parent.composed_of(target).name("target-module");
  auto post = parent.emplace([&] { after = order.fetch_add(1); });
  pre.precede(mod);
  mod.precede(post);
  EXPECT_TRUE(mod.is_module());
  EXPECT_FALSE(mod.is_condition());

  tf.run(parent).get();
  EXPECT_EQ(before.load(), 0);
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 2);
  EXPECT_EQ(after.load(), 3);  // module joins before its successors fire
}

TEST_P(Composition, EmptyTargetModuleIsANoOp) {
  tf::Taskflow tf(make());
  tf::Taskflow empty;
  tf::Taskflow parent;
  std::atomic<bool> after{false};
  auto mod = parent.composed_of(empty);
  mod.precede(parent.emplace([&] { after = true; }));
  tf.run(parent).get();  // must not hang on a sourceless empty expansion
  EXPECT_TRUE(after.load());
}

TEST_P(Composition, OneTargetComposedIntoTwoConcurrentParents) {
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  target.emplace([&] {
    started++;
    spin_until(release);
    finished++;
  });

  tf::Taskflow parent_a;
  tf::Taskflow parent_b;
  parent_a.composed_of(target);
  parent_b.composed_of(target);

  auto ha = tf.run(parent_a);
  auto hb = tf.run(parent_b);
  // Both parents hold their own instantiation of `target` in flight at once:
  // a shared mutable expansion would deadlock or double-run here.
  while (started.load() < 2) std::this_thread::yield();
  release = true;
  ASSERT_EQ(ha.wait_for(kDeadline), std::future_status::ready);
  ASSERT_EQ(hb.wait_for(kDeadline), std::future_status::ready);
  ha.get();
  hb.get();
  EXPECT_EQ(finished.load(), 2);
}

TEST_P(Composition, ModulesNestRecursively) {
  tf::Taskflow tf(make());
  tf::Taskflow innermost;
  std::atomic<int> inner_runs{0};
  innermost.emplace([&] { inner_runs++; });

  tf::Taskflow middle;
  std::atomic<int> middle_runs{0};
  auto mid_task = middle.emplace([&] { middle_runs++; });
  auto mid_mod = middle.composed_of(innermost);
  mid_task.precede(mid_mod);

  tf::Taskflow outer;
  outer.composed_of(middle);
  tf.run(outer).get();
  EXPECT_EQ(middle_runs.load(), 1);
  EXPECT_EQ(inner_runs.load(), 1);
}

TEST_P(Composition, ConditionLoopReExpandsTheModuleEachLap) {
  // A module on a condition loop must re-instantiate per lap (its _spawned
  // latch resets on finalize), so the target's tasks run once per lap.
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> expansions{0};
  target.emplace([&] { expansions++; });

  tf::Taskflow parent;
  int laps = 0;
  auto init = parent.emplace([&] { laps = 0; });
  auto mod = parent.composed_of(target);
  auto cond = parent.emplace([&] { return ++laps < 5 ? 0 : 1; });
  auto done = parent.emplace([] {});
  init.precede(mod);
  mod.precede(cond);
  cond.precede(mod);   // 0: run the module again
  cond.precede(done);  // 1: exit
  tf.run(parent).get();
  EXPECT_EQ(expansions.load(), 5);
}

TEST_P(Composition, RunNReusesTheModuleParent) {
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> runs{0};
  target.emplace([&] { runs++; });
  tf::Taskflow parent;
  parent.composed_of(target);
  tf.run_n(parent, 4);
  EXPECT_EQ(runs.load(), 4);
}

TEST_P(Composition, TargetWithConditionLoopComposes) {
  // In-graph control flow survives instantiation: the copied condition's
  // weak edges and loop behave exactly like the original's.
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> total{0};
  int laps = 0;
  auto init = target.emplace([&] { laps = 0; });
  auto body = target.emplace([&] {
    ++laps;
    total++;
  });
  auto cond = target.emplace([&] { return laps < 6 ? 0 : 1; });
  auto exit = target.emplace([] {});
  init.precede(body);
  body.precede(cond);
  cond.precede(body);
  cond.precede(exit);
  tf::Taskflow parent;
  parent.composed_of(target);
  tf.run(parent).get();
  EXPECT_EQ(total.load(), 6);
}

TEST_P(Composition, MoveOnlyCallableInTargetIsACapturedError) {
  // Instantiation clones the target's callables; a move-only one cannot be
  // cloned, and the failure must surface as a captured run error (with the
  // descriptive SmallFunction message), not a crash or a silent skip.
  tf::Taskflow tf(make());
  tf::Taskflow target;
  auto token = std::make_unique<int>(42);
  target.emplace([token = std::move(token)] { (void)*token; });
  tf::Taskflow parent;
  parent.composed_of(target);
  auto handle = tf.run(parent);
  try {
    handle.get();
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("not copy-constructible"),
              std::string::npos)
        << e.what();
  }
}

TEST_P(Composition, ModuleGraphsUnderAdmissionShedding) {
  // A shed parent run never expands its module: the target's tasks must not
  // execute again, and the shed handle reports the OverloadError.
  tf::ExecutorOptions opts;
  opts.shed_watermark = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow target;
  std::atomic<int> ran{0};
  target.emplace([&] {
    ran++;
    spin_until(gate);
  });
  tf::Taskflow parent;
  parent.composed_of(target);

  auto h0 = executor.run(parent);  // in flight (started: not sheddable)
  auto h1 = executor.run(parent);  // queued behind h0; pending 2 > 1: shed
  ASSERT_EQ(h1.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h1.get(), tf::OverloadError);
  EXPECT_TRUE(h1.is_cancelled());
  EXPECT_EQ(executor.num_shed(), 1u);
  gate = true;
  ASSERT_EQ(h0.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(h0.get());
  executor.wait_for_all();
  EXPECT_EQ(ran.load(), 1);  // only h0's expansion executed the target
}

// ---------------------------------------------------------------------------
// Recursion guards (ISSUE 9 satellite): composed_of rejects statically
// detectable module cycles at build time; recursion assembled at runtime
// (through dynamic subflows, invisible to the static walk) hits the
// expansion-depth cap and surfaces a captured, task-naming CompositionError
// through the future instead of a stack overflow.
// ---------------------------------------------------------------------------

TEST(CompositionGuard, SelfCompositionThrowsAtBuildTime) {
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  flow.emplace([&] { ran++; });
  EXPECT_THROW((void)flow.composed_of(flow), tf::CompositionError);
  // The guard fires before the module node is created: the flow stays
  // intact and runnable.
  tf::Executor executor(1);
  EXPECT_NO_THROW(executor.run(flow).get());
  EXPECT_EQ(ran.load(), 1);
}

TEST(CompositionGuard, MutualCompositionThrowsAtBuildTime) {
  tf::Taskflow a;
  tf::Taskflow b;
  a.emplace([] {});
  b.emplace([] {});
  (void)a.composed_of(b);
  try {
    (void)b.composed_of(a);
    FAIL() << "closing a mutual module cycle must throw";
  } catch (const tf::CompositionError& e) {
    EXPECT_NE(std::string(e.what()).find("recurs"), std::string::npos)
        << e.what();
  }
}

TEST(CompositionGuard, TransitiveCompositionThrowsButDiamondReuseIsLegal) {
  tf::Taskflow a;
  tf::Taskflow b;
  tf::Taskflow c;
  c.emplace([] {});
  (void)a.composed_of(b);
  (void)b.composed_of(c);
  EXPECT_THROW((void)c.composed_of(a), tf::CompositionError);
  // Reuse without a cycle must stay legal: a already reaches c through b,
  // and composing c a second time is a diamond, not recursion.
  EXPECT_NO_THROW((void)a.composed_of(c));
}

TEST_P(Composition, DeepLegalNestingRunsUnderTheCap) {
  // A 48-deep linear module chain stays under kMaxModuleDepth (64) and must
  // complete normally - the cap only fires on runaway recursion.
  constexpr int kDepth = 48;
  std::atomic<int> ran{0};
  std::vector<std::unique_ptr<tf::Taskflow>> flows;
  flows.push_back(std::make_unique<tf::Taskflow>());
  flows.back()->emplace([&] { ran++; });
  for (int i = 1; i < kDepth; ++i) {
    flows.push_back(std::make_unique<tf::Taskflow>());
    (void)flows.back()->composed_of(*flows[static_cast<std::size_t>(i) - 1]);
  }
  tf::Taskflow tf(make());
  auto h = tf.run(*flows.back());
  ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(h.get());
  EXPECT_EQ(ran.load(), 1);
}

TEST_P(Composition, RuntimeAssembledRecursionHitsTheDepthCap) {
  // The static walk cannot see this cycle: each run of `rec` spawns a fresh
  // subflow graph that composes `rec` again, so the reference chain only
  // exists at execution time.  The depth cap must stop it and deliver a
  // CompositionError naming the module task through the future.
  tf::Taskflow rec;
  std::atomic<int> expansions{0};
  rec.emplace([&](tf::SubflowBuilder& sf) {
    expansions++;
    sf.composed_of(rec).name("recurse");
  });

  tf::Taskflow tf(make());
  auto h = tf.run(rec);
  ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
  try {
    h.get();
    FAIL() << "unbounded runtime recursion must surface CompositionError";
  } catch (const tf::CompositionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recurse"), std::string::npos) << what;
    EXPECT_NE(what.find("depth cap"), std::string::npos) << what;
  }
  // Bounded damage: the cap stops expansion near kMaxModuleDepth levels.
  EXPECT_GE(expansions.load(), 32);
  EXPECT_LE(expansions.load(), 80);
}

INSTANTIATE_TEST_SUITE_P(Backends, Composition,
                         ::testing::Values("work_stealing", "simple"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
