// Composable module tasks (ISSUE 8 tentpole): composed_of(target) embeds a
// non-owning reference to another Taskflow's graph; at execution the module
// deep-copies the target into its own subgraph (so one target can appear in
// several concurrently running parents) and runs it as a joined subflow.
// The suite pins reuse across parents, nesting, loop re-expansion, the
// move-only-callable diagnostic, and interaction with admission shedding.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

using namespace std::chrono_literals;

namespace {

constexpr auto kDeadline = std::chrono::seconds(30);

// Cancel-aware park, so aborted/shed runs still drain promptly.
void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load() && !tf::this_task::is_cancelled()) std::this_thread::yield();
}

// Opens the gate on scope exit even when an assertion bails out early, so
// the executor destructor can always drain.
struct GateOpener {
  explicit GateOpener(std::atomic<bool>& g) : gate(g) {}
  ~GateOpener() { gate.store(true); }
  std::atomic<bool>& gate;
};

class Composition : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 4) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
};

TEST_P(Composition, ModuleRunsTheTargetGraph) {
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> order{0};
  std::atomic<int> first{-1};
  std::atomic<int> second{-1};
  auto a = target.emplace([&] { first = order.fetch_add(1); });
  auto b = target.emplace([&] { second = order.fetch_add(1); });
  a.precede(b);  // the target's internal ordering must be preserved

  tf::Taskflow parent;
  std::atomic<int> before{-1};
  std::atomic<int> after{-1};
  auto pre = parent.emplace([&] { before = order.fetch_add(1); });
  auto mod = parent.composed_of(target).name("target-module");
  auto post = parent.emplace([&] { after = order.fetch_add(1); });
  pre.precede(mod);
  mod.precede(post);
  EXPECT_TRUE(mod.is_module());
  EXPECT_FALSE(mod.is_condition());

  tf.run(parent).get();
  EXPECT_EQ(before.load(), 0);
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 2);
  EXPECT_EQ(after.load(), 3);  // module joins before its successors fire
}

TEST_P(Composition, EmptyTargetModuleIsANoOp) {
  tf::Taskflow tf(make());
  tf::Taskflow empty;
  tf::Taskflow parent;
  std::atomic<bool> after{false};
  auto mod = parent.composed_of(empty);
  mod.precede(parent.emplace([&] { after = true; }));
  tf.run(parent).get();  // must not hang on a sourceless empty expansion
  EXPECT_TRUE(after.load());
}

TEST_P(Composition, OneTargetComposedIntoTwoConcurrentParents) {
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  target.emplace([&] {
    started++;
    spin_until(release);
    finished++;
  });

  tf::Taskflow parent_a;
  tf::Taskflow parent_b;
  parent_a.composed_of(target);
  parent_b.composed_of(target);

  auto ha = tf.run(parent_a);
  auto hb = tf.run(parent_b);
  // Both parents hold their own instantiation of `target` in flight at once:
  // a shared mutable expansion would deadlock or double-run here.
  while (started.load() < 2) std::this_thread::yield();
  release = true;
  ASSERT_EQ(ha.wait_for(kDeadline), std::future_status::ready);
  ASSERT_EQ(hb.wait_for(kDeadline), std::future_status::ready);
  ha.get();
  hb.get();
  EXPECT_EQ(finished.load(), 2);
}

TEST_P(Composition, ModulesNestRecursively) {
  tf::Taskflow tf(make());
  tf::Taskflow innermost;
  std::atomic<int> inner_runs{0};
  innermost.emplace([&] { inner_runs++; });

  tf::Taskflow middle;
  std::atomic<int> middle_runs{0};
  auto mid_task = middle.emplace([&] { middle_runs++; });
  auto mid_mod = middle.composed_of(innermost);
  mid_task.precede(mid_mod);

  tf::Taskflow outer;
  outer.composed_of(middle);
  tf.run(outer).get();
  EXPECT_EQ(middle_runs.load(), 1);
  EXPECT_EQ(inner_runs.load(), 1);
}

TEST_P(Composition, ConditionLoopReExpandsTheModuleEachLap) {
  // A module on a condition loop must re-instantiate per lap (its _spawned
  // latch resets on finalize), so the target's tasks run once per lap.
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> expansions{0};
  target.emplace([&] { expansions++; });

  tf::Taskflow parent;
  int laps = 0;
  auto init = parent.emplace([&] { laps = 0; });
  auto mod = parent.composed_of(target);
  auto cond = parent.emplace([&] { return ++laps < 5 ? 0 : 1; });
  auto done = parent.emplace([] {});
  init.precede(mod);
  mod.precede(cond);
  cond.precede(mod);   // 0: run the module again
  cond.precede(done);  // 1: exit
  tf.run(parent).get();
  EXPECT_EQ(expansions.load(), 5);
}

TEST_P(Composition, RunNReusesTheModuleParent) {
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> runs{0};
  target.emplace([&] { runs++; });
  tf::Taskflow parent;
  parent.composed_of(target);
  tf.run_n(parent, 4);
  EXPECT_EQ(runs.load(), 4);
}

TEST_P(Composition, TargetWithConditionLoopComposes) {
  // In-graph control flow survives instantiation: the copied condition's
  // weak edges and loop behave exactly like the original's.
  tf::Taskflow tf(make());
  tf::Taskflow target;
  std::atomic<int> total{0};
  int laps = 0;
  auto init = target.emplace([&] { laps = 0; });
  auto body = target.emplace([&] {
    ++laps;
    total++;
  });
  auto cond = target.emplace([&] { return laps < 6 ? 0 : 1; });
  auto exit = target.emplace([] {});
  init.precede(body);
  body.precede(cond);
  cond.precede(body);
  cond.precede(exit);
  tf::Taskflow parent;
  parent.composed_of(target);
  tf.run(parent).get();
  EXPECT_EQ(total.load(), 6);
}

TEST_P(Composition, MoveOnlyCallableInTargetIsACapturedError) {
  // Instantiation clones the target's callables; a move-only one cannot be
  // cloned, and the failure must surface as a captured run error (with the
  // descriptive SmallFunction message), not a crash or a silent skip.
  tf::Taskflow tf(make());
  tf::Taskflow target;
  auto token = std::make_unique<int>(42);
  target.emplace([token = std::move(token)] { (void)*token; });
  tf::Taskflow parent;
  parent.composed_of(target);
  auto handle = tf.run(parent);
  try {
    handle.get();
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("not copy-constructible"),
              std::string::npos)
        << e.what();
  }
}

TEST_P(Composition, ModuleGraphsUnderAdmissionShedding) {
  // A shed parent run never expands its module: the target's tasks must not
  // execute again, and the shed handle reports the OverloadError.
  tf::ExecutorOptions opts;
  opts.shed_watermark = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow target;
  std::atomic<int> ran{0};
  target.emplace([&] {
    ran++;
    spin_until(gate);
  });
  tf::Taskflow parent;
  parent.composed_of(target);

  auto h0 = executor.run(parent);  // in flight (started: not sheddable)
  auto h1 = executor.run(parent);  // queued behind h0; pending 2 > 1: shed
  ASSERT_EQ(h1.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h1.get(), tf::OverloadError);
  EXPECT_TRUE(h1.is_cancelled());
  EXPECT_EQ(executor.num_shed(), 1u);
  gate = true;
  ASSERT_EQ(h0.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(h0.get());
  executor.wait_for_all();
  EXPECT_EQ(ran.load(), 1);  // only h0's expansion executed the target
}

INSTANTIATE_TEST_SUITE_P(Backends, Composition,
                         ::testing::Values("work_stealing", "simple"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
