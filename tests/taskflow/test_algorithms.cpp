// Built-in algorithm collection (paper §III-F): parallel_for, reduce,
// transform, transform_reduce, following STL conventions.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <list>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

TEST(ParallelFor, AppliesToEveryElement) {
  tf::Taskflow tf(4);
  std::vector<int> data(10007, 0);
  tf.parallel_for(data.begin(), data.end(), [](int& v) { v += 3; });
  tf.wait_for_all();
  for (int v : data) EXPECT_EQ(v, 3);
}

TEST(ParallelFor, EmptyRangeIsValid) {
  tf::Taskflow tf(2);
  std::vector<int> data;
  auto [s, t] = tf.parallel_for(data.begin(), data.end(), [](int&) { FAIL(); });
  EXPECT_FALSE(s.empty());
  EXPECT_FALSE(t.empty());
  tf.wait_for_all();
}

TEST(ParallelFor, SingleElement) {
  tf::Taskflow tf(2);
  std::vector<int> data{41};
  tf.parallel_for(data.begin(), data.end(), [](int& v) { ++v; });
  tf.wait_for_all();
  EXPECT_EQ(data[0], 42);
}

TEST(ParallelFor, ExplicitChunkSizeCoversAll) {
  for (std::size_t chunk : {1u, 2u, 3u, 7u, 100u, 1000u}) {
    tf::Taskflow tf(4);
    std::vector<int> data(101, 0);
    tf.parallel_for(data.begin(), data.end(), [](int& v) { ++v; }, chunk);
    tf.wait_for_all();
    for (int v : data) ASSERT_EQ(v, 1) << "chunk=" << chunk;
  }
}

TEST(ParallelFor, WorksOnNonRandomAccessIterators) {
  tf::Taskflow tf(4);
  std::list<int> data(500, 1);
  tf.parallel_for(data.begin(), data.end(), [](int& v) { v = 2; });
  tf.wait_for_all();
  for (int v : data) EXPECT_EQ(v, 2);
}

TEST(ParallelFor, SplicesIntoLargerGraph) {
  tf::Taskflow tf(4);
  std::vector<int> data(100, 0);
  std::atomic<bool> pre_done{false};
  std::atomic<bool> order_ok{true};

  auto pre = tf.emplace([&] { pre_done = true; });
  auto [s, t] = tf.parallel_for(data.begin(), data.end(), [&](int& v) {
    if (!pre_done.load()) order_ok = false;
    v = 1;
  });
  auto post = tf.emplace([&] {
    for (int v : data) {
      if (v != 1) order_ok = false;
    }
  });
  pre.precede(s);
  t.precede(post);
  tf.wait_for_all();
  EXPECT_TRUE(order_ok.load());
}

class IndexForP : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IndexForP, MatchesSequentialLoop) {
  const auto [beg, end, step] = GetParam();
  std::vector<int> expected;
  if (step > 0) {
    for (int i = beg; i < end; i += step) expected.push_back(i);
  } else {
    for (int i = beg; i > end; i += step) expected.push_back(i);
  }

  tf::Taskflow tf(4);
  std::mutex m;
  std::vector<int> got;
  tf.parallel_for(beg, end, step, [&](int i) {
    std::scoped_lock lock(m);
    got.push_back(i);
  });
  tf.wait_for_all();
  std::sort(got.begin(), got.end());
  auto sorted = expected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(got, sorted);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, IndexForP,
    ::testing::Values(std::make_tuple(0, 100, 1), std::make_tuple(0, 100, 3),
                      std::make_tuple(5, 6, 1), std::make_tuple(0, 0, 1),
                      std::make_tuple(10, 0, -1), std::make_tuple(100, -3, -7),
                      std::make_tuple(-50, 50, 11)));

TEST(Reduce, SumsLargeVector) {
  tf::Taskflow tf(4);
  std::vector<long> data(100000);
  std::iota(data.begin(), data.end(), 1);
  long result = 0;
  tf.reduce(data.begin(), data.end(), result, std::plus<long>{});
  tf.wait_for_all();
  EXPECT_EQ(result, 100000L * 100001L / 2);
}

TEST(Reduce, RespectsInitialValue) {
  tf::Taskflow tf(4);
  std::vector<int> data(10, 1);
  int result = 100;
  tf.reduce(data.begin(), data.end(), result, std::plus<int>{});
  tf.wait_for_all();
  EXPECT_EQ(result, 110);
}

TEST(Reduce, MinReduction) {
  tf::Taskflow tf(4);
  std::vector<int> data;
  for (int i = 0; i < 9999; ++i) data.push_back((i * 7919) % 10007);
  int result = std::numeric_limits<int>::max();
  tf.reduce(data.begin(), data.end(), result,
            [](int a, int b) { return std::min(a, b); });
  tf.wait_for_all();
  EXPECT_EQ(result, *std::min_element(data.begin(), data.end()));
}

TEST(Reduce, EmptyRangeLeavesResultUntouched) {
  tf::Taskflow tf(2);
  std::vector<int> data;
  int result = 7;
  tf.reduce(data.begin(), data.end(), result, std::plus<int>{});
  tf.wait_for_all();
  EXPECT_EQ(result, 7);
}

TEST(TransformReduce, SumOfSquares) {
  tf::Taskflow tf(4);
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  long result = 0;
  tf.transform_reduce(data.begin(), data.end(), result, std::plus<long>{},
                      [](int v) { return static_cast<long>(v) * v; });
  tf.wait_for_all();
  long expected = 0;
  for (int v : data) expected += static_cast<long>(v) * v;
  EXPECT_EQ(result, expected);
}

TEST(TransformReduce, StringLengths) {
  tf::Taskflow tf(2);
  std::vector<std::string> words{"task", "dependency", "graph", "", "cpp"};
  std::size_t total = 0;
  tf.transform_reduce(words.begin(), words.end(), total, std::plus<std::size_t>{},
                      [](const std::string& s) { return s.size(); });
  tf.wait_for_all();
  EXPECT_EQ(total, 4u + 10u + 5u + 0u + 3u);
}

TEST(Transform, ElementwiseMap) {
  tf::Taskflow tf(4);
  std::vector<int> in(5000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(in.size(), -1);
  tf.transform(in.begin(), in.end(), out.begin(), [](int v) { return v * 2; });
  tf.wait_for_all();
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i] * 2);
}

TEST(Transform, EmptyRange) {
  tf::Taskflow tf(2);
  std::vector<int> in, out;
  tf.transform(in.begin(), in.end(), out.begin(), [](int v) { return v; });
  tf.wait_for_all();
  EXPECT_TRUE(out.empty());
}

TEST(Transform, TypeConversion) {
  tf::Taskflow tf(2);
  std::vector<int> in{1, 2, 3};
  std::vector<std::string> out(3);
  tf.transform(in.begin(), in.end(), out.begin(),
               [](int v) { return std::to_string(v); });
  tf.wait_for_all();
  EXPECT_EQ(out[0], "1");
  EXPECT_EQ(out[1], "2");
  EXPECT_EQ(out[2], "3");
}

// ---- partitioner-driven overloads (DESIGN.md §9) ---------------------------

template <typename P>
void run_all_patterns_with(P part) {
  tf::Taskflow tf(4);
  std::vector<int> data(10007, 1);
  std::vector<int> out(data.size(), 0);
  std::atomic<long> stepped_sum{0};
  long reduced = 0;
  long transform_reduced = 0;

  tf.parallel_for(data.begin(), data.end(), [](int& v) { v += 1; }, part);
  tf.wait_for_all();
  for (int v : data) ASSERT_EQ(v, 2);

  tf.parallel_for(0, 1000, 3, [&](int i) { stepped_sum += i; }, part);
  tf.wait_for_all();
  long expected_stepped = 0;
  for (int i = 0; i < 1000; i += 3) expected_stepped += i;
  ASSERT_EQ(stepped_sum.load(), expected_stepped);

  tf.transform(data.begin(), data.end(), out.begin(),
               [](int v) { return v * 5; }, part);
  tf.wait_for_all();
  for (int v : out) ASSERT_EQ(v, 10);

  tf.reduce(data.begin(), data.end(), reduced, std::plus<long>{}, part);
  tf.wait_for_all();
  ASSERT_EQ(reduced, 2L * static_cast<long>(data.size()));

  tf.transform_reduce(data.begin(), data.end(), transform_reduced,
                      std::plus<long>{}, [](int v) { return v * 10L; }, part);
  tf.wait_for_all();
  ASSERT_EQ(transform_reduced, 20L * static_cast<long>(data.size()));
}

TEST(Partitioned, StaticCoversEveryPattern) {
  run_all_patterns_with(tf::StaticPartitioner{});
  run_all_patterns_with(tf::StaticPartitioner{64});
}

TEST(Partitioned, DynamicCoversEveryPattern) {
  run_all_patterns_with(tf::DynamicPartitioner{});
  run_all_patterns_with(tf::DynamicPartitioner{128});
}

TEST(Partitioned, GuidedCoversEveryPattern) {
  run_all_patterns_with(tf::GuidedPartitioner{});
  run_all_patterns_with(tf::GuidedPartitioner{16});
}

TEST(Partitioned, NonRandomAccessIteratorsWithEveryPartitioner) {
  std::list<int> data(2000, 1);
  auto check = [&](auto part) {
    tf::Taskflow tf(4);
    std::atomic<long> sum{0};
    tf.parallel_for(data.begin(), data.end(), [&](int v) { sum += v; }, part);
    tf.wait_for_all();
    ASSERT_EQ(sum.load(), 2000);
  };
  check(tf::StaticPartitioner{});
  check(tf::DynamicPartitioner{100});
  check(tf::GuidedPartitioner{});
}

// The tentpole acceptance criterion: node count scales with the executor's
// worker count, never with the element count.
TEST(Partitioned, NodeCountIsIndependentOfElementCount) {
  for (std::size_t n : {std::size_t{100}, std::size_t{100000}, std::size_t{1000000}}) {
    tf::Taskflow tf(4);
    std::vector<char> data(n, 0);
    const auto before = tf.num_nodes();
    tf.parallel_for(data.begin(), data.end(), [](char& c) { c = 1; });
    // source + target + min(workers, ranges_hint) range workers.
    EXPECT_EQ(tf.num_nodes() - before, 2u + 4u) << "n=" << n;
    tf.wait_for_all();
  }
}

TEST(Partitioned, NodeCountCappedByDomainAndHint) {
  tf::Taskflow tf(8);
  std::vector<int> tiny(3, 0);
  const auto before = tf.num_nodes();
  tf.parallel_for(tiny.begin(), tiny.end(), [](int& v) { ++v; });
  EXPECT_EQ(tf.num_nodes() - before, 2u + 3u);  // 3 elements -> 3 workers

  // A static chunk of 1000 over 2000 elements yields 2 ranges -> 2 workers.
  const auto before2 = tf.num_nodes();
  std::vector<int> data(2000, 0);
  tf.parallel_for(data.begin(), data.end(), [](int& v) { ++v; },
                  tf::StaticPartitioner{1000});
  EXPECT_EQ(tf.num_nodes() - before2, 2u + 2u);
  tf.wait_for_all();
}

TEST(Partitioned, ReduceAndSteppedNodeCounts) {
  tf::Taskflow tf(4);
  std::vector<long> data(500000, 1);
  long result = 0;
  const auto before = tf.num_nodes();
  tf.reduce(data.begin(), data.end(), result, std::plus<long>{});
  EXPECT_EQ(tf.num_nodes() - before, 2u + 4u);

  const auto before2 = tf.num_nodes();
  std::atomic<long> count{0};
  tf.parallel_for(0, 1000000, 1, [&](int) { count++; });
  EXPECT_EQ(tf.num_nodes() - before2, 2u + 4u);
  tf.wait_for_all();
  EXPECT_EQ(result, 500000);
  EXPECT_EQ(count.load(), 1000000);
}

TEST(Partitioned, DefaultParallelismIsAdjustable) {
  tf::Taskflow tf(4);
  EXPECT_EQ(tf.default_parallelism(), 4u);
  tf.default_parallelism(2);
  std::vector<int> data(10000, 0);
  const auto before = tf.num_nodes();
  tf.parallel_for(data.begin(), data.end(), [](int& v) { ++v; });
  EXPECT_EQ(tf.num_nodes() - before, 2u + 2u);
  tf.wait_for_all();
  for (int v : data) ASSERT_EQ(v, 1);
}

// run_n re-runs the same graph: the source task must rewind the cursor (and
// clear the reduce partials) so every run covers the full domain again.
TEST(Partitioned, FrameworkRunNReplaysTheFullDomain) {
  tf::Taskflow tf(4);
  tf::Framework fw;
  fw.default_parallelism(4);
  std::vector<int> data(5000, 0);
  fw.parallel_for(data.begin(), data.end(), [](int& v) { ++v; },
                  tf::GuidedPartitioner{});
  tf.run_n(fw, 3);
  tf.wait_for_all();
  for (int v : data) ASSERT_EQ(v, 3);
}

TEST(Partitioned, FrameworkRunNReduceDoesNotDoubleCountPartials) {
  tf::Taskflow tf(4);
  tf::Framework fw;
  fw.default_parallelism(4);
  std::vector<long> data(1000, 1);
  long result = 0;
  fw.reduce(data.begin(), data.end(), result, std::plus<long>{});
  tf.run_n(fw, 3);
  tf.wait_for_all();
  // Each run folds the full (freshly recomputed) partials into result once.
  EXPECT_EQ(result, 3000);
}

// ---- stepped-range hardening ----------------------------------------------

TEST(IndexFor, ZeroStepThrowsBeforeWiringAnyNode) {
  tf::Taskflow tf(2);
  const auto before = tf.num_nodes();
  EXPECT_THROW(tf.parallel_for(0, 10, 0, [](int) {}), std::invalid_argument);
  EXPECT_THROW(tf.parallel_for(0, 10, 0, [](int) {}, tf::StaticPartitioner{4}),
               std::invalid_argument);
  EXPECT_THROW(tf.parallel_for(0, 10, 0, [](int) {}, std::size_t{4}),
               std::invalid_argument);
  EXPECT_EQ(tf.num_nodes(), before);  // no broken graph was wired
  tf.wait_for_all();
}

TEST(IndexFor, DirectionMismatchIsAnEmptyRange) {
  tf::Taskflow tf(2);
  std::atomic<int> calls{0};
  tf.parallel_for(10, 0, 1, [&](int) { calls++; });    // beg > end, step > 0
  tf.parallel_for(0, 10, -1, [&](int) { calls++; });   // beg < end, step < 0
  tf.parallel_for(5, 5, 1, [&](int) { calls++; });     // empty either way
  tf.wait_for_all();
  EXPECT_EQ(calls.load(), 0);
}

TEST(IndexFor, FullIntRangeDoesNotOverflowTheTripCount) {
  // span = 2^32 - 1 does not fit in int; the unsigned trip-count math must
  // still produce the exact ceil(span / step) count.
  tf::Taskflow tf(4);
  constexpr int kStep = 1 << 24;
  std::atomic<long> count{0};
  std::atomic<long> first{std::numeric_limits<long>::max()};
  tf.parallel_for(std::numeric_limits<int>::min(), std::numeric_limits<int>::max(),
                  kStep, [&](int i) {
                    count++;
                    long v = i;
                    long cur = first.load();
                    while (v < cur && !first.compare_exchange_weak(cur, v)) {
                    }
                  });
  tf.wait_for_all();
  EXPECT_EQ(count.load(), 256);  // ceil((2^32 - 1) / 2^24)
  EXPECT_EQ(first.load(), std::numeric_limits<int>::min());
}

TEST(IndexFor, UnsignedIndexTypeWraparoundSafe) {
  tf::Taskflow tf(2);
  std::atomic<int> calls{0};
  // An empty unsigned range whose naive (end - beg) is huge.
  tf.parallel_for(std::size_t{10}, std::size_t{0}, std::size_t{1},
                  [&](std::size_t) { calls++; });
  tf.wait_for_all();
  EXPECT_EQ(calls.load(), 0);
}

// ---- error-model interplay (PR 2 semantics × range workers) ---------------

struct AlgoError : std::runtime_error {
  AlgoError() : std::runtime_error("algo error") {}
};

TEST(AlgoErrors, ThrowMidTransformReduceDrainsAndSkipsCombiner) {
  tf::Taskflow tf(4);
  std::vector<int> data(10000, 1);
  long result = -7;  // must stay untouched: the combiner target is skipped
  tf.transform_reduce(data.begin(), data.end(), result, std::plus<long>{},
                      [&](const int& v) -> long {
                        if (&v == &data[2500]) throw AlgoError{};
                        return v;
                      },
                      tf::DynamicPartitioner{100});
  EXPECT_THROW(tf.wait_for_all(), AlgoError);
  EXPECT_EQ(result, -7);
  EXPECT_EQ(tf.num_topologies(), 0u);  // drained, not wedged
}

TEST(AlgoErrors, CancellationStopsWorkersBetweenRanges) {
  tf::Taskflow tf(2);
  std::vector<int> data(100000, 0);
  std::atomic<std::size_t> processed{0};
  tf.parallel_for(data.begin(), data.end(),
                  [&](int&) {
                    processed++;
                    // Hold the current range open until the run is cancelled;
                    // every later element of the range then passes instantly,
                    // and the worker stops at the next grab.
                    while (!tf::this_task::is_cancelled()) {
                      std::this_thread::yield();
                    }
                  },
                  tf::DynamicPartitioner{64});
  auto handle = tf.dispatch();
  while (processed.load() == 0) std::this_thread::yield();
  handle.cancel();
  handle.get();  // cancellation is not an error
  EXPECT_TRUE(handle.is_cancelled());
  EXPECT_GE(processed.load(), 1u);
  EXPECT_LT(processed.load(), data.size());  // the cursor was NOT drained
  tf.wait_for_all();
}

// Retry on a range worker re-enters its grab loop: the cursor is not
// rewound, so exactly the range that failed mid-flight is abandoned and
// everything else is still processed.
TEST(AlgoErrors, RetryOnRangeWorkersResumesGrabbing) {
  tf::Taskflow tf(2);
  std::vector<int> data(1000, 0);
  std::atomic<int> processed{0};
  std::atomic<bool> thrown{false};
  const auto before = tf.num_nodes();
  tf.parallel_for(data.begin(), data.end(),
                  [&](int&) {
                    if (!thrown.exchange(true)) throw AlgoError{};
                    processed++;
                  },
                  tf::DynamicPartitioner{100});
  const auto after = tf.num_nodes();
  ASSERT_EQ(after - before, 2u + 2u);
  // The range workers sit right after the (source, target) pair - reach
  // them through the task_at escape hatch to attach the policy.
  for (auto i = before + 2; i < after; ++i) tf.task_at(i).retry(2);
  tf.wait_for_all();  // the retried worker makes the run succeed
  EXPECT_TRUE(thrown.load());
  // One 100-element range was abandoned (1 threw + 99 never processed).
  EXPECT_EQ(processed.load(), 900);
}

TEST(AlgoErrors, FallbackOnRangeWorkersDegradesOneRange) {
  tf::Taskflow tf(2);
  std::vector<int> data(1000, 0);
  std::atomic<int> processed{0};
  std::atomic<int> fallbacks{0};
  const auto before = tf.num_nodes();
  tf.parallel_for(data.begin(), data.end(),
                  [&](int& v) {
                    if (&v - data.data() < 100) throw AlgoError{};
                    processed++;
                  },
                  tf::DynamicPartitioner{100});
  const auto after = tf.num_nodes();
  for (auto i = before + 2; i < after; ++i) {
    tf.task_at(i).fallback([&] { fallbacks++; });
  }
  tf.wait_for_all();  // fallback degrades the failing worker; no rethrow
  EXPECT_EQ(fallbacks.load(), 1);  // exactly one worker hit the bad range
  // The sibling worker drained every range except the abandoned [0, 100).
  EXPECT_EQ(processed.load(), 900);
}

TEST(Algorithms, ComposeTwoPatternsSequentially) {
  // transform then reduce, chained through the sync tasks.
  tf::Taskflow tf(4);
  std::vector<int> in(1000, 2);
  std::vector<int> mid(1000, 0);
  long result = 0;
  auto [ts, tt] = tf.transform(in.begin(), in.end(), mid.begin(),
                               [](int v) { return v * 10; });
  auto [rs, rt] = tf.reduce(mid.begin(), mid.end(), result, std::plus<long>{});
  tt.precede(rs);
  tf.wait_for_all();
  EXPECT_EQ(result, 20000);
}

}  // namespace
