// Built-in algorithm collection (paper §III-F): parallel_for, reduce,
// transform, transform_reduce, following STL conventions.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <list>
#include <numeric>
#include <string>
#include <vector>

namespace {

TEST(ParallelFor, AppliesToEveryElement) {
  tf::Taskflow tf(4);
  std::vector<int> data(10007, 0);
  tf.parallel_for(data.begin(), data.end(), [](int& v) { v += 3; });
  tf.wait_for_all();
  for (int v : data) EXPECT_EQ(v, 3);
}

TEST(ParallelFor, EmptyRangeIsValid) {
  tf::Taskflow tf(2);
  std::vector<int> data;
  auto [s, t] = tf.parallel_for(data.begin(), data.end(), [](int&) { FAIL(); });
  EXPECT_FALSE(s.empty());
  EXPECT_FALSE(t.empty());
  tf.wait_for_all();
}

TEST(ParallelFor, SingleElement) {
  tf::Taskflow tf(2);
  std::vector<int> data{41};
  tf.parallel_for(data.begin(), data.end(), [](int& v) { ++v; });
  tf.wait_for_all();
  EXPECT_EQ(data[0], 42);
}

TEST(ParallelFor, ExplicitChunkSizeCoversAll) {
  for (std::size_t chunk : {1u, 2u, 3u, 7u, 100u, 1000u}) {
    tf::Taskflow tf(4);
    std::vector<int> data(101, 0);
    tf.parallel_for(data.begin(), data.end(), [](int& v) { ++v; }, chunk);
    tf.wait_for_all();
    for (int v : data) ASSERT_EQ(v, 1) << "chunk=" << chunk;
  }
}

TEST(ParallelFor, WorksOnNonRandomAccessIterators) {
  tf::Taskflow tf(4);
  std::list<int> data(500, 1);
  tf.parallel_for(data.begin(), data.end(), [](int& v) { v = 2; });
  tf.wait_for_all();
  for (int v : data) EXPECT_EQ(v, 2);
}

TEST(ParallelFor, SplicesIntoLargerGraph) {
  tf::Taskflow tf(4);
  std::vector<int> data(100, 0);
  std::atomic<bool> pre_done{false};
  std::atomic<bool> order_ok{true};

  auto pre = tf.emplace([&] { pre_done = true; });
  auto [s, t] = tf.parallel_for(data.begin(), data.end(), [&](int& v) {
    if (!pre_done.load()) order_ok = false;
    v = 1;
  });
  auto post = tf.emplace([&] {
    for (int v : data) {
      if (v != 1) order_ok = false;
    }
  });
  pre.precede(s);
  t.precede(post);
  tf.wait_for_all();
  EXPECT_TRUE(order_ok.load());
}

class IndexForP : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IndexForP, MatchesSequentialLoop) {
  const auto [beg, end, step] = GetParam();
  std::vector<int> expected;
  if (step > 0) {
    for (int i = beg; i < end; i += step) expected.push_back(i);
  } else {
    for (int i = beg; i > end; i += step) expected.push_back(i);
  }

  tf::Taskflow tf(4);
  std::mutex m;
  std::vector<int> got;
  tf.parallel_for(beg, end, step, [&](int i) {
    std::scoped_lock lock(m);
    got.push_back(i);
  });
  tf.wait_for_all();
  std::sort(got.begin(), got.end());
  auto sorted = expected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(got, sorted);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, IndexForP,
    ::testing::Values(std::make_tuple(0, 100, 1), std::make_tuple(0, 100, 3),
                      std::make_tuple(5, 6, 1), std::make_tuple(0, 0, 1),
                      std::make_tuple(10, 0, -1), std::make_tuple(100, -3, -7),
                      std::make_tuple(-50, 50, 11)));

TEST(Reduce, SumsLargeVector) {
  tf::Taskflow tf(4);
  std::vector<long> data(100000);
  std::iota(data.begin(), data.end(), 1);
  long result = 0;
  tf.reduce(data.begin(), data.end(), result, std::plus<long>{});
  tf.wait_for_all();
  EXPECT_EQ(result, 100000L * 100001L / 2);
}

TEST(Reduce, RespectsInitialValue) {
  tf::Taskflow tf(4);
  std::vector<int> data(10, 1);
  int result = 100;
  tf.reduce(data.begin(), data.end(), result, std::plus<int>{});
  tf.wait_for_all();
  EXPECT_EQ(result, 110);
}

TEST(Reduce, MinReduction) {
  tf::Taskflow tf(4);
  std::vector<int> data;
  for (int i = 0; i < 9999; ++i) data.push_back((i * 7919) % 10007);
  int result = std::numeric_limits<int>::max();
  tf.reduce(data.begin(), data.end(), result,
            [](int a, int b) { return std::min(a, b); });
  tf.wait_for_all();
  EXPECT_EQ(result, *std::min_element(data.begin(), data.end()));
}

TEST(Reduce, EmptyRangeLeavesResultUntouched) {
  tf::Taskflow tf(2);
  std::vector<int> data;
  int result = 7;
  tf.reduce(data.begin(), data.end(), result, std::plus<int>{});
  tf.wait_for_all();
  EXPECT_EQ(result, 7);
}

TEST(TransformReduce, SumOfSquares) {
  tf::Taskflow tf(4);
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  long result = 0;
  tf.transform_reduce(data.begin(), data.end(), result, std::plus<long>{},
                      [](int v) { return static_cast<long>(v) * v; });
  tf.wait_for_all();
  long expected = 0;
  for (int v : data) expected += static_cast<long>(v) * v;
  EXPECT_EQ(result, expected);
}

TEST(TransformReduce, StringLengths) {
  tf::Taskflow tf(2);
  std::vector<std::string> words{"task", "dependency", "graph", "", "cpp"};
  std::size_t total = 0;
  tf.transform_reduce(words.begin(), words.end(), total, std::plus<std::size_t>{},
                      [](const std::string& s) { return s.size(); });
  tf.wait_for_all();
  EXPECT_EQ(total, 4u + 10u + 5u + 0u + 3u);
}

TEST(Transform, ElementwiseMap) {
  tf::Taskflow tf(4);
  std::vector<int> in(5000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(in.size(), -1);
  tf.transform(in.begin(), in.end(), out.begin(), [](int v) { return v * 2; });
  tf.wait_for_all();
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], in[i] * 2);
}

TEST(Transform, EmptyRange) {
  tf::Taskflow tf(2);
  std::vector<int> in, out;
  tf.transform(in.begin(), in.end(), out.begin(), [](int v) { return v; });
  tf.wait_for_all();
  EXPECT_TRUE(out.empty());
}

TEST(Transform, TypeConversion) {
  tf::Taskflow tf(2);
  std::vector<int> in{1, 2, 3};
  std::vector<std::string> out(3);
  tf.transform(in.begin(), in.end(), out.begin(),
               [](int v) { return std::to_string(v); });
  tf.wait_for_all();
  EXPECT_EQ(out[0], "1");
  EXPECT_EQ(out[1], "2");
  EXPECT_EQ(out[2], "3");
}

TEST(Algorithms, ComposeTwoPatternsSequentially) {
  // transform then reduce, chained through the sync tasks.
  tf::Taskflow tf(4);
  std::vector<int> in(1000, 2);
  std::vector<int> mid(1000, 0);
  long result = 0;
  auto [ts, tt] = tf.transform(in.begin(), in.end(), mid.begin(),
                               [](int v) { return v * 10; });
  auto [rs, rt] = tf.reduce(mid.begin(), mid.end(), result, std::plus<long>{});
  tt.precede(rs);
  tf.wait_for_all();
  EXPECT_EQ(result, 20000);
}

}  // namespace
