// Executor observer interface and the recording observer used for the CPU
// utilization profile (paper Fig. 10 right).
#include "taskflow/observer.hpp"
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace {

class CountingObserver final : public tf::ExecutorObserverInterface {
 public:
  std::atomic<int> setups{0};
  std::atomic<int> entries{0};
  std::atomic<int> exits{0};
  std::atomic<std::size_t> workers{0};

  void set_up(std::size_t num_workers) override {
    setups++;
    workers = num_workers;
  }
  void on_entry(std::size_t, const tf::Node&) override { entries++; }
  void on_exit(std::size_t, const tf::Node&) override { exits++; }
};

TEST(Observer, ReceivesSetUpWithWorkerCount) {
  auto executor = tf::make_executor(3);
  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);
  EXPECT_EQ(obs->setups.load(), 1);
  EXPECT_EQ(obs->workers.load(), 3u);
}

TEST(Observer, EntryExitPerTask) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  for (int i = 0; i < 100; ++i) tf.emplace([] {});
  tf.wait_for_all();
  EXPECT_EQ(obs->entries.load(), 100);
  EXPECT_EQ(obs->exits.load(), 100);
}

TEST(Observer, PlaceholdersAreNotObserved) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  auto a = tf.emplace([] {});
  auto p = tf.placeholder();  // no callable: synchronization only
  a.precede(p);
  tf.wait_for_all();
  EXPECT_EQ(obs->entries.load(), 1);
}

TEST(Observer, DynamicTasksObservedOncePerSpawn) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  tf.emplace([](tf::SubflowBuilder& sf) {
    sf.emplace([] {});
    sf.emplace([] {});
  });
  tf.wait_for_all();
  EXPECT_EQ(obs->entries.load(), 3);  // parent + 2 children
  EXPECT_EQ(obs->exits.load(), 3);
}

TEST(Observer, AttachBeforeDispatchSeesEveryEventIncludingSubflows) {
  // The documented contract (ISSUE 2 satellite): attach while no graph is
  // running, and the observer sees every task of subsequently dispatched
  // graphs - including dynamically spawned subflow children.
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  for (int i = 0; i < 20; ++i) {
    tf.emplace([](tf::SubflowBuilder& sf) {
      sf.emplace([] {});
      sf.emplace([] {});
    });
  }
  tf.wait_for_all();
  EXPECT_EQ(obs->entries.load(), 60);  // 20 parents + 40 children
  EXPECT_EQ(obs->exits.load(), 60);
}

TEST(Observer, ThrowingTaskGetsEntryWithoutExit) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  tf.emplace([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(tf.wait_for_all(), std::runtime_error);
  EXPECT_EQ(obs->entries.load(), 1);  // the task did start...
  EXPECT_EQ(obs->exits.load(), 0);    // ...but never completed
}

TEST(Observer, SkippedTasksProduceNoEvents) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  auto a = tf.emplace([] { throw std::runtime_error("boom"); });
  auto b = tf.emplace([] {});
  auto c = tf.emplace([] {});
  a.precede(b);
  b.precede(c);
  EXPECT_THROW(tf.wait_for_all(), std::runtime_error);
  // b and c were drained (their bookkeeping ran) but never executed, so the
  // observer timeline records only the task that actually ran.
  EXPECT_EQ(obs->entries.load(), 1);
  EXPECT_EQ(obs->exits.load(), 0);
}

TEST(RecordingObserver, CountsTasks) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<tf::RecordingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  for (int i = 0; i < 50; ++i) tf.emplace([] {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  tf.wait_for_all();
  EXPECT_EQ(obs->num_tasks(), 50u);
}

TEST(RecordingObserver, UtilizationReflectsBusyTime) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<tf::RecordingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  // One long task: ~40ms busy on one worker.
  tf.emplace([] { std::this_thread::sleep_for(std::chrono::milliseconds(40)); });
  tf.wait_for_all();
  const auto util = obs->utilization(std::chrono::milliseconds(10));
  ASSERT_GE(util.size(), 3u);
  double total = 0.0;
  for (double u : util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 200.0 + 1e-9);  // 2 workers -> max 200%
    total += u;
  }
  EXPECT_GT(total, 100.0);  // roughly 4 buckets at ~100%
}

TEST(RecordingObserver, EmptyUtilizationWhenNothingRecorded) {
  tf::RecordingObserver obs;
  obs.set_up(2);
  EXPECT_TRUE(obs.utilization(std::chrono::milliseconds(10)).empty());
  EXPECT_EQ(obs.num_tasks(), 0u);
}

TEST(RecordingObserver, ClearResets) {
  auto executor = tf::make_executor(1);
  auto obs = std::make_shared<tf::RecordingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  tf.emplace([] {});
  tf.wait_for_all();
  EXPECT_EQ(obs->num_tasks(), 1u);
  obs->clear();
  EXPECT_EQ(obs->num_tasks(), 0u);
}


TEST(RecordingObserver, ChromeTracingExport) {
  auto executor = tf::make_executor(2);
  auto obs = std::make_shared<tf::RecordingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  tf.emplace([] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); })
      .name("alpha");
  tf.emplace([] {}).name("beta \"quoted\"");
  tf.wait_for_all();

  std::ostringstream ss;
  obs->dump_chrome_tracing(ss);
  const std::string json = ss.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("beta \\\"quoted\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Crude structural validity: balanced braces, one event per task.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
}

class ResilienceObserver final : public tf::ExecutorObserverInterface {
 public:
  std::atomic<int> retries{0};
  std::atomic<int> last_attempt{0};
  std::atomic<int> fallbacks{0};
  std::atomic<int> timeouts{0};

  void on_task_retry(std::size_t, const tf::Node&, int attempt) override {
    retries++;
    last_attempt = attempt;
  }
  void on_task_fallback(std::size_t, const tf::Node&) override { fallbacks++; }
  void on_topology_timeout() override { timeouts++; }
};

TEST(Observer, RetryAndFallbackEvents) {
  tf::Executor executor(2);
  auto obs = std::make_shared<ResilienceObserver>();
  executor.set_observer(obs);
  tf::Taskflow taskflow;
  // Fails all 3 attempts, then degrades: 2 retry events (after attempts 1
  // and 2), then 1 fallback event.
  taskflow.emplace([] { throw std::runtime_error("boom"); })
      .retry(2)
      .fallback([] {});
  executor.run(taskflow).get();
  EXPECT_EQ(obs->retries.load(), 2);
  EXPECT_EQ(obs->last_attempt.load(), 2);
  EXPECT_EQ(obs->fallbacks.load(), 1);
  EXPECT_EQ(obs->timeouts.load(), 0);
}

TEST(Observer, TopologyTimeoutEventFiresExactlyOnce) {
  tf::Executor executor(2);
  auto obs = std::make_shared<ResilienceObserver>();
  executor.set_observer(obs);
  tf::Taskflow taskflow;
  taskflow.emplace([] {
    const auto hard_stop = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!tf::this_task::is_cancelled() &&
           std::chrono::steady_clock::now() < hard_stop) {
      std::this_thread::yield();
    }
  });
  auto handle = executor.run(taskflow, tf::RunPolicy{std::chrono::milliseconds(10)});
  EXPECT_THROW(handle.get(), tf::TimeoutError);
  // Exactly one expiry wins the first-writer race (wheel vs watchdog sweep).
  EXPECT_EQ(obs->timeouts.load(), 1);
  EXPECT_EQ(obs->retries.load(), 0);
  EXPECT_EQ(obs->fallbacks.load(), 0);
}

TEST(Observer, DefaultResilienceHandlersAreNoOps) {
  // A pre-resilience observer (CountingObserver overrides nothing new) must
  // compile and run unchanged through retries, fallbacks, and timeouts.
  tf::Executor executor(2);
  auto obs = std::make_shared<CountingObserver>();
  executor.set_observer(obs);
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  taskflow.emplace([&] {
    if (attempts.fetch_add(1) == 0) throw std::runtime_error("boom");
  }).retry(1);
  executor.run(taskflow).get();
  EXPECT_EQ(obs->entries.load(), 2);  // both attempts started
  EXPECT_EQ(obs->exits.load(), 1);    // only the successful one completed
}

class AdmissionEventObserver final : public tf::ExecutorObserverInterface {
 public:
  std::atomic<int> admits{0};
  std::atomic<int> rejects{0};
  std::atomic<int> sheds{0};
  void on_topology_admit() override { admits++; }
  void on_topology_reject() override { rejects++; }
  void on_topology_shed() override { sheds++; }
};

TEST(Observer, AdmissionEventsFireOnAdmissionControlledExecutor) {
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 1;
  tf::Executor executor(2, opts);
  auto obs = std::make_shared<AdmissionEventObserver>();
  executor.set_observer(obs);
  tf::Taskflow taskflow;
  std::atomic<bool> gate{false};
  taskflow.emplace([&] {
    while (!gate.load() && !tf::this_task::is_cancelled()) std::this_thread::yield();
  });
  auto handle = executor.run(taskflow);            // admit
  EXPECT_FALSE(executor.try_run(taskflow).has_value());  // reject: bound hit
  gate = true;
  handle.get();
  executor.wait_for_all();
  EXPECT_EQ(obs->admits.load(), 1);
  EXPECT_EQ(obs->rejects.load(), 1);
  EXPECT_EQ(obs->sheds.load(), 0);
}

TEST(Observer, AdmissionEventsSilentOnZeroPolicyExecutor) {
  // The zero-policy hot path never consults admission control, so the new
  // hooks must stay silent there (they only fire when a policy is set).
  tf::Executor executor(2);
  auto obs = std::make_shared<AdmissionEventObserver>();
  executor.set_observer(obs);
  tf::Taskflow taskflow;
  taskflow.emplace([] {});
  executor.run(taskflow).get();
  (void)executor.try_run(taskflow)->get();
  executor.wait_for_all();
  EXPECT_EQ(obs->admits.load(), 0);
  EXPECT_EQ(obs->rejects.load(), 0);
  EXPECT_EQ(obs->sheds.load(), 0);
}

TEST(Observer, DefaultAdmissionHandlersAreNoOps) {
  // A pre-admission observer (CountingObserver overrides none of the new
  // hooks) must compile and run unchanged through admits, rejects, sheds.
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 2;
  opts.shed_watermark = 2;
  tf::Executor executor(1, opts);
  auto obs = std::make_shared<CountingObserver>();
  executor.set_observer(obs);
  tf::Taskflow a, b;
  std::atomic<bool> gate{false};
  a.emplace([&] {
    while (!gate.load() && !tf::this_task::is_cancelled()) std::this_thread::yield();
  });
  b.emplace([] {});
  auto ha = executor.run(a);                       // admit (started, parked)
  auto hq = executor.run(a);                       // admit (queued behind ha)
  EXPECT_FALSE(executor.try_run(a).has_value());   // reject (client bound)
  auto hb = executor.run(b);                       // admit: 3 > 2, sheds hq
  EXPECT_THROW(hq.get(), tf::OverloadError);
  gate = true;
  ha.get();
  hb.get();
  executor.wait_for_all();
  EXPECT_EQ(obs->entries.load(), 2);  // a's gated run and b's; never hq
  EXPECT_EQ(obs->exits.load(), 2);
}

TEST(RecordingObserver, IntervalAccessorsExposeNames) {
  auto executor = tf::make_executor(1);
  auto obs = std::make_shared<tf::RecordingObserver>();
  executor->set_observer(obs);
  tf::Taskflow tf(executor);
  tf.emplace([] {}).name("only");
  tf.wait_for_all();
  ASSERT_EQ(obs->num_workers(), 1u);
  ASSERT_EQ(obs->intervals(0).size(), 1u);
  EXPECT_EQ(obs->intervals(0)[0].name, "only");
  EXPECT_LE(obs->intervals(0)[0].begin, obs->intervals(0)[0].end);
}

}  // namespace

