// Tests of the executor-centric API (ISSUE 3): tf::Executor as the run entry
// point - run / run_n / run_until / async / wait_for_all - submitted from
// one thread and from many concurrent client threads, over both scheduler
// backends.  Covers the serialization contract (runs of one taskflow are
// FIFO-serialized, distinct taskflows overlap), the PR 2 error semantics
// through the new entry points (first-exception rethrow, cancel drain,
// CycleError), and the multi-client diagnostics.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace {

using namespace std::chrono_literals;

// The Framework/Taskflow unification: paper-era tf::Framework code now names
// the same type.
static_assert(std::is_same_v<tf::Framework, tf::Taskflow>);

constexpr auto kDeadline = 120s;

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

// Run each test over both pluggable backends.
class ExecutorApi : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] static std::shared_ptr<tf::ExecutorInterface> backend(std::size_t n) {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
  [[nodiscard]] static tf::Executor make(std::size_t n = 4) {
    return tf::Executor(backend(n));
  }
};

TEST_P(ExecutorApi, RunOnceCompletesAndIsRepeatable) {
  tf::Taskflow taskflow;  // pure graph: no private executor, no threads
  std::atomic<int> counter{0};
  auto [a, b, c] = taskflow.emplace([&] { counter++; }, [&] { counter++; },
                                    [&] { counter++; });
  a.precede(b);
  b.precede(c);

  auto executor = make();
  executor.run(taskflow).get();
  EXPECT_EQ(counter.load(), 3);
  executor.run(taskflow).get();  // same graph, re-armed
  EXPECT_EQ(counter.load(), 6);
  EXPECT_EQ(executor.num_topologies(), 0u);
}

TEST_P(ExecutorApi, RunEmptyTaskflowIsReadyImmediately) {
  tf::Taskflow taskflow;
  auto executor = make();
  auto handle = executor.run(taskflow);
  EXPECT_EQ(handle.wait_for(0s), std::future_status::ready);
  EXPECT_NO_THROW(handle.get());
  EXPECT_EQ(executor.num_topologies(), 0u);
}

TEST_P(ExecutorApi, RunNRepeats) {
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] { runs++; });

  auto executor = make();
  executor.run_n(taskflow, 0).get();  // no-op, ready immediately
  EXPECT_EQ(runs.load(), 0);
  executor.run_n(taskflow, 7).get();
  EXPECT_EQ(runs.load(), 7);
}

TEST_P(ExecutorApi, RunNSubflowsRespawnEveryRepeat) {
  tf::Taskflow taskflow;
  std::atomic<int> children{0};
  taskflow.emplace([&](tf::SubflowBuilder& sf) {
    for (int i = 0; i < 3; ++i) sf.emplace([&] { children++; });
  });
  auto executor = make();
  executor.run_n(taskflow, 5).get();
  EXPECT_EQ(children.load(), 15);
}

TEST_P(ExecutorApi, RunUntilStopsWhenPredicateHolds) {
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] { runs++; });

  auto executor = make();
  executor.run_until(taskflow, [&] { return runs.load() >= 5; }).get();
  EXPECT_EQ(runs.load(), 5);

  // The predicate is evaluated after each run: even an immediately-true
  // predicate still runs at least once.
  executor.run_until(taskflow, [] { return true; }).get();
  EXPECT_EQ(runs.load(), 6);
}

TEST_P(ExecutorApi, SameTaskflowRunsAreSerializedFifo) {
  tf::Taskflow taskflow;
  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};
  std::atomic<int> runs{0};
  auto first = taskflow.emplace([&] {
    if (in_flight.fetch_add(1) != 0) overlapped = true;
  });
  auto last = taskflow.emplace([&] {
    runs++;
    in_flight.fetch_sub(1);
  });
  first.precede(last);

  auto executor = make();
  std::vector<tf::ExecutionHandle> handles;
  handles.reserve(16);
  for (int i = 0; i < 8; ++i) handles.push_back(executor.run(taskflow));
  handles.push_back(executor.run_n(taskflow, 8));
  for (auto& h : handles) {
    ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready)
        << executor.stall_report();
    h.get();
  }
  EXPECT_FALSE(overlapped.load()) << "runs of one taskflow overlapped";
  EXPECT_EQ(runs.load(), 16);
}

TEST_P(ExecutorApi, DistinctTaskflowsOverlap) {
  // A's task blocks until B's task has run: if distinct taskflows were
  // serialized behind each other this would deadlock (the bounded wait turns
  // that into a failure instead of a hang).
  auto executor = make(2);
  std::promise<void> b_ran;
  std::shared_future<void> b_ran_future = b_ran.get_future().share();

  tf::Taskflow a;
  a.emplace([b_ran_future] { b_ran_future.wait(); });
  tf::Taskflow b;
  b.emplace([&b_ran] { b_ran.set_value(); });

  auto ha = executor.run(a);
  auto hb = executor.run(b);
  ASSERT_EQ(ha.wait_for(kDeadline), std::future_status::ready)
      << executor.stall_report();
  ASSERT_EQ(hb.wait_for(kDeadline), std::future_status::ready);
  ha.get();
  hb.get();
}

TEST_P(ExecutorApi, AsyncDeliversValuesVoidsAndExceptions) {
  auto executor = make();

  auto value = executor.async([] { return 40 + 2; });
  EXPECT_EQ(value.get(), 42);

  std::atomic<bool> ran{false};
  auto done = executor.async([&] { ran = true; });
  done.get();
  EXPECT_TRUE(ran.load());

  auto failing = executor.async([]() -> int { throw Boom(); });
  EXPECT_THROW(failing.get(), Boom);

  // Move-only captures are first-class (the callable is never copied).
  auto boxed = std::make_unique<int>(7);
  auto moved = executor.async([boxed = std::move(boxed)] { return *boxed * 6; });
  EXPECT_EQ(moved.get(), 42);

  executor.wait_for_all();
  EXPECT_EQ(executor.num_asyncs(), 0u);
}

TEST_P(ExecutorApi, AsyncFromInsideATask) {
  auto executor = make();
  tf::Taskflow taskflow;
  std::future<int> inner;
  taskflow.emplace([&] { inner = executor.async([] { return 99; }); });
  executor.run(taskflow).get();
  EXPECT_EQ(inner.get(), 99);
}

TEST_P(ExecutorApi, WaitForAllDrainsEverythingAndCountersReturnToZero) {
  auto executor = make();
  tf::Taskflow a;
  std::atomic<int> runs{0};
  a.emplace([&] { runs++; });
  tf::Taskflow b;
  b.emplace([&] { runs++; });

  (void)executor.run_n(a, 5);
  (void)executor.run_n(b, 5);
  for (int i = 0; i < 10; ++i) (void)executor.async([&] { runs++; });
  executor.wait_for_all();
  EXPECT_EQ(runs.load(), 20);
  EXPECT_EQ(executor.num_topologies(), 0u);
  EXPECT_EQ(executor.num_asyncs(), 0u);
  EXPECT_TRUE(executor.wait_for_all_for(0ms));
}

TEST_P(ExecutorApi, TaskExceptionRethrowsFromHandleAndStopsRepeats) {
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] {
    if (runs.fetch_add(1) + 1 == 3) throw Boom();
  });

  auto executor = make();
  auto handle = executor.run_n(taskflow, 10);
  ASSERT_EQ(handle.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(handle.get(), Boom);
  EXPECT_EQ(runs.load(), 3) << "a failing run must stop the remaining repeats";
  EXPECT_TRUE(handle.is_cancelled());  // an error always drains

  // The taskflow itself stays reusable: the next submission re-arms cleanly.
  auto again = executor.run(taskflow);
  ASSERT_EQ(again.wait_for(kDeadline), std::future_status::ready);
  again.get();
  EXPECT_EQ(runs.load(), 4);
}

TEST_P(ExecutorApi, FailedRunHandsQueueToNextClientSubmission) {
  // A failing run of a taskflow must not wedge its FIFO queue: runs queued
  // behind it still execute.
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] {
    if (runs.fetch_add(1) + 1 == 1) throw Boom();
  });

  auto executor = make();
  auto h1 = executor.run(taskflow);
  auto h2 = executor.run(taskflow);
  ASSERT_EQ(h2.wait_for(kDeadline), std::future_status::ready)
      << executor.stall_report();
  EXPECT_THROW(h1.get(), Boom);
  EXPECT_NO_THROW(h2.get());
  EXPECT_EQ(runs.load(), 2);
}

TEST_P(ExecutorApi, CancelStopsRemainingRepeats) {
  tf::Taskflow taskflow;
  std::atomic<long> runs{0};
  taskflow.emplace([&] { runs++; });

  auto executor = make();
  auto handle = executor.run_n(taskflow, 1000000);
  while (runs.load() == 0) std::this_thread::yield();  // let it start
  handle.cancel();
  ASSERT_EQ(handle.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(handle.get());  // cancellation is not an error
  EXPECT_TRUE(handle.is_cancelled());
  EXPECT_LT(runs.load(), 1000000L);
}

TEST_P(ExecutorApi, TasksObserveCancellation) {
  tf::Taskflow taskflow;
  std::atomic<bool> observed{false};
  std::promise<void> started;
  std::atomic<bool> release{false};
  auto first = taskflow.emplace([&] {
    started.set_value();
    while (!release.load()) std::this_thread::yield();
    observed = tf::this_task::is_cancelled();
  });
  first.precede(taskflow.emplace([] {}));

  auto executor = make();
  auto handle = executor.run(taskflow);
  started.get_future().wait();
  handle.cancel();
  release = true;
  ASSERT_EQ(handle.wait_for(kDeadline), std::future_status::ready);
  handle.get();
  EXPECT_TRUE(observed.load());
}

TEST_P(ExecutorApi, CyclicTaskflowThrowsCycleErrorSynchronously) {
  tf::Taskflow taskflow;
  auto [a, b] = taskflow.emplace([] {}, [] {});
  a.precede(b);
  b.precede(a);

  auto executor = make();
  EXPECT_THROW((void)executor.run(taskflow), tf::CycleError);
  EXPECT_THROW((void)executor.run_n(taskflow, 3), tf::CycleError);
  EXPECT_EQ(executor.num_topologies(), 0u);
  executor.wait_for_all();  // nothing was enqueued; must not hang
}

TEST_P(ExecutorApi, StallReportShowsClientQueuesAndAsyncs) {
  auto executor = make(2);
  std::atomic<bool> release{false};
  std::atomic<bool> started_once{false};
  std::promise<void> started;
  tf::Taskflow taskflow;
  taskflow.emplace([&] {
    if (!started_once.exchange(true)) started.set_value();  // runs twice
    while (!release.load()) std::this_thread::yield();
  });

  auto h1 = executor.run(taskflow);
  auto h2 = executor.run(taskflow);  // queued behind the blocked run
  started.get_future().wait();

  const std::string report = executor.stall_report();
  EXPECT_NE(report.find("executor stall report"), std::string::npos) << report;
  EXPECT_NE(report.find("2 queued run(s)"), std::string::npos) << report;
  EXPECT_NE(report.find("in-flight graph runs: 2"), std::string::npos) << report;
  EXPECT_NE(report.find("in-flight task execution(s)"), std::string::npos)
      << report;

  release = true;
  ASSERT_EQ(h2.wait_for(kDeadline), std::future_status::ready);
  h1.get();
  h2.get();

  const std::string drained = executor.stall_report();
  EXPECT_NE(drained.find("in-flight graph runs: 0, in-flight asyncs: 0"),
            std::string::npos)
      << drained;
  EXPECT_EQ(drained.find("queued run(s)"), std::string::npos)
      << "drained clients must leave the registry:\n"
      << drained;
}

TEST_P(ExecutorApi, ObserverAttachedMidRunIsSafe) {
  // The set_observer data-race fix: attaching/swapping observers while tasks
  // execute must be safe (TSan-verified) and later tasks become visible.
  auto executor = make(2);
  tf::Taskflow taskflow;
  for (int i = 0; i < 64; ++i) taskflow.emplace([] {});

  auto handle = executor.run_n(taskflow, 50);
  for (int i = 0; i < 8; ++i) {
    executor.set_observer(std::make_shared<tf::RecordingObserver>());
  }
  ASSERT_EQ(handle.wait_for(kDeadline), std::future_status::ready);
  handle.get();

  // Attach-before-run visibility: a fresh observer sees every task of runs
  // submitted afterwards.
  auto observer = std::make_shared<tf::RecordingObserver>();
  executor.set_observer(observer);
  executor.run_n(taskflow, 2).get();
  EXPECT_EQ(observer->num_tasks(), 128u);
}

TEST_P(ExecutorApi, ObserverAttachedMidAdmissionStormIsSafe) {
  // The attach-mid-run hammer, extended to the admission events: swapping
  // observers while an admission-controlled executor churns through admits,
  // rejects, and sheds must be safe (TSan-verified), and the new hooks fire
  // on whichever observer is attached when each event lands.
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 2;
  opts.shed_watermark = 6;
  tf::Executor executor(backend(2), opts);
  tf::Taskflow taskflow;
  for (int i = 0; i < 8; ++i) taskflow.emplace([] { std::this_thread::yield(); });

  std::atomic<bool> done{false};
  std::thread storm([&] {
    tf::Taskflow mine;
    mine.emplace([] { std::this_thread::yield(); });
    for (int i = 0; i < 200; ++i) {
      std::vector<tf::ExecutionHandle> handles;
      handles.push_back(executor.run(mine));
      if (auto h = executor.try_run(mine)) handles.push_back(*h);
      if (auto h = executor.try_run(mine)) handles.push_back(*h);
      for (auto& h : handles) {
        if (h.wait_for(kDeadline) != std::future_status::ready) break;
        try {
          h.get();
        } catch (const tf::OverloadError&) {
        }
      }
    }
    done = true;
  });
  while (!done.load()) {
    executor.set_observer(std::make_shared<tf::RecordingObserver>());
    std::this_thread::yield();
  }
  storm.join();
  executor.wait_for_all();
  EXPECT_EQ(executor.num_topologies(), 0u);
}

// The acceptance-criteria workload: >= 8 client threads hammering one shared
// executor with run / run_n / run_until / async, mixed with throwing and
// cancelled runs plus a shared taskflow contended by every client.  Verifies
// completion, per-client counts, the serialization contract on the shared
// graph, and that the executor drains to zero.
TEST_P(ExecutorApi, EightConcurrentClientsHammerOneExecutor) {
  constexpr int kClients = 8;
  constexpr int kIters = 12;
  auto executor = make(4);

  // One graph contended by all clients: FIFO serialization must hold.
  tf::Taskflow shared_flow;
  std::atomic<int> shared_in_flight{0};
  std::atomic<bool> shared_overlap{false};
  std::atomic<long> shared_runs{0};
  auto enter = shared_flow.emplace([&] {
    if (shared_in_flight.fetch_add(1) != 0) shared_overlap = true;
  });
  auto leave = shared_flow.emplace([&] {
    shared_runs++;
    shared_in_flight.fetch_sub(1);
  });
  enter.precede(leave);

  std::atomic<long> private_runs{0};
  std::atomic<long> async_sum{0};
  std::atomic<long> exceptions_seen{0};
  std::atomic<long> cancels_seen{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Each client owns a private taskflow (graph building is single-owner;
      // submission is the concurrent part).
      tf::Taskflow mine;
      std::atomic<long> mine_runs{0};
      std::atomic<bool> throw_now{false};
      auto head = mine.emplace([&] {
        mine_runs++;
        if (throw_now.load()) throw Boom();
      });
      head.precede(mine.emplace([] {}), mine.emplace([] {}));

      for (int i = 0; i < kIters; ++i) {
        switch (i % 4) {
          case 0: {  // plain run + contended run on the shared graph
            auto h = executor.run(mine);
            auto hs = executor.run(shared_flow);
            h.get();
            hs.get();
            break;
          }
          case 1: {  // multi-run with a mid-sequence cancel
            auto h = executor.run_n(mine, 64);
            if (c % 2 == 0) {
              h.cancel();
              cancels_seen++;
            }
            h.get();
            break;
          }
          case 2: {  // throwing run: rethrow + repeats stop
            throw_now = true;
            auto h = executor.run_n(mine, 8);
            try {
              h.get();
            } catch (const Boom&) {
              exceptions_seen++;
            }
            throw_now = false;
            break;
          }
          default: {  // run_until + a burst of asyncs
            const long target = mine_runs.load() + 3;
            auto h = executor.run_until(mine, [&, target] {
              return mine_runs.load() >= target;
            });
            std::vector<std::future<long>> futs;
            futs.reserve(4);
            for (long k = 0; k < 4; ++k) {
              futs.push_back(executor.async([k] { return k; }));
            }
            h.get();
            for (auto& f : futs) async_sum += f.get();
            break;
          }
        }
      }
      private_runs += mine_runs.load();
    });
  }
  for (auto& t : clients) t.join();

  executor.wait_for_all();
  EXPECT_FALSE(shared_overlap.load()) << "shared-taskflow runs overlapped";
  EXPECT_EQ(shared_runs.load(), kClients * (kIters / 4 + (kIters % 4 > 0)));
  EXPECT_EQ(async_sum.load(), kClients * (kIters / 4) * 6);  // 0+1+2+3 per burst
  EXPECT_EQ(exceptions_seen.load(), kClients * (kIters / 4));
  EXPECT_GT(private_runs.load(), 0);
  EXPECT_EQ(executor.num_topologies(), 0u);
  EXPECT_EQ(executor.num_asyncs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ExecutorApi,
                         ::testing::Values("work_stealing", "simple"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// Executor-owned default backend (no explicit ExecutorInterface).
TEST(ExecutorApiDefault, DefaultConstructedExecutorRuns) {
  tf::Executor executor(2);
  EXPECT_EQ(executor.num_workers(), 2u);
  tf::Taskflow taskflow;
  std::atomic<int> n{0};
  taskflow.emplace([&] { n++; });
  executor.run_n(taskflow, 3).get();
  EXPECT_EQ(n.load(), 3);
  EXPECT_EQ(executor.async([] { return 5; }).get(), 5);
}

// Paper-era entry points shim onto the same machinery: dispatch() and
// Taskflow::run still work, and a pure-graph Taskflow spawns no threads
// until a legacy entry point needs them.
TEST(ExecutorApiLegacy, PaperEraShimsStillWork) {
  tf::Taskflow tf(2);
  std::atomic<int> n{0};
  auto [a, b] = tf.emplace([&] { n++; }, [&] { n++; });
  a.precede(b);
  auto handle = tf.dispatch();
  std::shared_future<void> fut = handle;  // implicit conversion retained
  fut.get();
  EXPECT_EQ(n.load(), 2);
  EXPECT_EQ(tf.num_topologies(), 1u);
  tf.wait_for_all();
  EXPECT_EQ(tf.num_topologies(), 0u);

  tf::Framework fw;  // deprecated alias of Taskflow
  fw.emplace([&] { n++; });
  tf.run_n(fw, 3);
  EXPECT_EQ(n.load(), 5);
}

}  // namespace
