// Stall/cycle diagnostics (ISSUE 2 tentpole): dispatch-time cycle detection
// throws tf::CycleError with a descriptive message instead of hanging
// wait_for_all() forever, wait_for_all_for() bounds waits, and
// stall_report() snapshots executor + topology state for deadlock triage.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "support/rng.hpp"

namespace {

using namespace std::chrono_literals;

TEST(CycleCheck, SelfLoopThrowsAtDispatch) {
  tf::Taskflow tf(2);
  auto a = tf.emplace([] {}).name("selfie");
  a.precede(a);
  EXPECT_THROW(tf.dispatch(), tf::CycleError);
  // A failed dispatch leaves the present graph intact.
  EXPECT_EQ(tf.num_nodes(), 1u);
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST(CycleCheck, TwoCycleMessageNamesTheTasks) {
  tf::Taskflow tf(2);
  auto a = tf.emplace([] {}).name("alpha");
  auto b = tf.emplace([] {}).name("beta");
  a.precede(b);
  b.precede(a);
  try {
    tf.dispatch();
    FAIL() << "cyclic dispatch must throw";
  } catch (const tf::CycleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
    EXPECT_NE(what.find("->"), std::string::npos) << what;
  }
}

TEST(CycleCheck, CycleBehindASourceIsStillDetected) {
  // Kahn's algorithm must not be fooled by the presence of valid sources.
  tf::Taskflow tf(2);
  auto s = tf.emplace([] {});
  auto a = tf.emplace([] {});
  auto b = tf.emplace([] {});
  s.precede(a);
  a.precede(b);
  b.precede(a);
  EXPECT_THROW(tf.silent_dispatch(), tf::CycleError);
}

TEST(CycleCheck, UnnamedTasksGetPositionalLabels) {
  tf::Taskflow tf(2);
  auto a = tf.emplace([] {});
  auto b = tf.emplace([] {});
  a.precede(b);
  b.precede(a);
  try {
    tf.dispatch();
    FAIL() << "cyclic dispatch must throw";
  } catch (const tf::CycleError& e) {
    EXPECT_NE(std::string(e.what()).find("task#"), std::string::npos) << e.what();
  }
}

TEST(CycleCheck, LargeAcyclicGraphDispatchesClean) {
  tf::Taskflow tf(4);
  std::atomic<int> executed{0};
  constexpr int n = 2000;
  std::vector<tf::Task> tasks;
  tasks.reserve(n);
  for (int i = 0; i < n; ++i) tasks.push_back(tf.emplace([&] { executed++; }));
  support::Xoshiro256 rng(99);
  for (int v = 1; v < n; ++v) {
    for (std::uint64_t e = 0; e < rng.below(3); ++e) {
      tasks[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(v)))]
          .precede(tasks[static_cast<std::size_t>(v)]);
    }
  }
  tf.wait_for_all();
  EXPECT_EQ(executed.load(), n);
}

TEST(CycleCheck, CyclicFrameworkRunThrows) {
  tf::Taskflow tf(2);
  tf::Framework fw;
  auto a = fw.emplace([] {});
  auto b = fw.emplace([] {});
  a.precede(b);
  b.precede(a);
  EXPECT_THROW(tf.run(fw), tf::CycleError);
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST(CycleCheck, CyclicSubflowSurfacesThroughTheFuture) {
  tf::Taskflow tf(2);
  tf.emplace([](tf::SubflowBuilder& sf) {
     auto x = sf.emplace([] {});
     auto y = sf.emplace([] {});
     x.precede(y);
     y.precede(x);
   }).name("spawner");
  auto handle = tf.dispatch();
  try {
    handle.get();
    FAIL() << "cyclic subflow must fail the topology";
  } catch (const tf::CycleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("subflow"), std::string::npos) << what;
    EXPECT_NE(what.find("spawner"), std::string::npos) << what;
  }
  EXPECT_THROW(tf.wait_for_all(), tf::CycleError);
}

TEST(TimedWait, TimesOutOnBlockedTaskThenFinishes) {
  tf::Taskflow tf(2);
  std::atomic<bool> gate{false};
  tf.emplace([&] {
    while (!gate.load()) std::this_thread::yield();
  });
  tf.silent_dispatch();
  EXPECT_FALSE(tf.wait_for_all_for(50ms));  // stalled
  EXPECT_EQ(tf.num_topologies(), 1u);       // topologies kept for triage
  gate = true;
  EXPECT_TRUE(tf.wait_for_all_for(10s));
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST(TimedWait, DispatchesThePresentGraphLikeWaitForAll) {
  tf::Taskflow tf(2);
  std::atomic<int> executed{0};
  for (int i = 0; i < 10; ++i) tf.emplace([&] { executed++; });
  EXPECT_TRUE(tf.wait_for_all_for(10s));
  EXPECT_EQ(executed.load(), 10);
}

TEST(TimedWait, RethrowsTaskExceptionOnCompletion) {
  tf::Taskflow tf(2);
  tf.emplace([] { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)tf.wait_for_all_for(10s), std::runtime_error);
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST(TimedWait, HandleDeadlineWaits) {
  tf::Taskflow tf(2);
  std::atomic<bool> gate{false};
  tf.emplace([&] {
    while (!gate.load()) std::this_thread::yield();
  });
  auto handle = tf.dispatch();
  EXPECT_EQ(handle.wait_for(10ms), std::future_status::timeout);
  EXPECT_EQ(handle.wait_until(std::chrono::steady_clock::now() + 10ms),
            std::future_status::timeout);
  gate = true;
  EXPECT_EQ(handle.wait_for(10s), std::future_status::ready);
  tf.wait_for_all();
}

TEST(StallReport, DescribesBlockedTopologyAndExecutor) {
  tf::Taskflow tf(2);
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  auto root = tf.emplace([&] {
    started = true;
    while (!gate.load()) std::this_thread::yield();
  });
  root.precede(tf.emplace([] {}));
  tf.silent_dispatch();
  while (!started.load()) std::this_thread::yield();
  const std::string report = tf.stall_report();
  EXPECT_NE(report.find("work-stealing executor"), std::string::npos) << report;
  EXPECT_NE(report.find("worker"), std::string::npos) << report;
  EXPECT_NE(report.find("in-flight task execution(s) over 2 node(s)"),
            std::string::npos)
      << report;
  gate = true;
  tf.wait_for_all();
  EXPECT_NE(tf.stall_report().find("no dispatched topologies"), std::string::npos);
}

TEST(StallReport, CoversSimpleExecutorAndCancelledState) {
  tf::Taskflow tf(std::make_shared<tf::SimpleExecutor>(2));
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  tf.emplace([&] {
    started = true;
    while (!gate.load() && !tf::this_task::is_cancelled()) std::this_thread::yield();
  });
  auto handle = tf.dispatch();
  while (!started.load()) std::this_thread::yield();
  EXPECT_NE(tf.stall_report().find("simple executor"), std::string::npos);
  handle.cancel();
  handle.wait();
  EXPECT_NE(tf.stall_report().find("[draining: cancelled]"), std::string::npos);
  tf.wait_for_all();
}

TEST(StallReport, ShowsExceptionDrain) {
  tf::Taskflow tf(2);
  tf.emplace([] { throw std::runtime_error("boom"); });
  auto handle = tf.dispatch();
  handle.wait();
  EXPECT_NE(tf.stall_report().find("[draining: task exception]"), std::string::npos);
  EXPECT_THROW(tf.wait_for_all(), std::runtime_error);
}

}  // namespace
