// Stress tests of the batched release path: one finishing node makes a large
// set of successors ready at once and the executor must publish them as one
// batch (single fence, bounded wakeups) without losing or duplicating any.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace {

constexpr int kFanOut = 512;
constexpr int kRepeats = 20;

// One source releases kFanOut successors in a single finalization; every
// successor must run exactly once and the sink exactly once per round.
void run_fanout_exactly_once(const std::shared_ptr<tf::ExecutorInterface>& executor) {
  for (int round = 0; round < kRepeats; ++round) {
    tf::Taskflow tf(executor);
    std::vector<std::atomic<int>> runs(kFanOut);
    std::atomic<int> sink_runs{0};
    auto source = tf.emplace([] {});
    auto sink = tf.emplace([&sink_runs] { ++sink_runs; });
    for (int i = 0; i < kFanOut; ++i) {
      auto mid = tf.emplace([&runs, i] { runs[i].fetch_add(1, std::memory_order_relaxed); });
      source.precede(mid);
      mid.precede(sink);
    }
    tf.wait_for_all();
    for (int i = 0; i < kFanOut; ++i) {
      ASSERT_EQ(runs[i].load(), 1) << "successor " << i << " round " << round;
    }
    ASSERT_EQ(sink_runs.load(), 1) << "round " << round;
  }
}

TEST(BatchRelease, FanOutExactlyOnceWorkStealing) {
  run_fanout_exactly_once(tf::make_executor(4));
}

TEST(BatchRelease, FanOutExactlyOnceSimpleExecutor) {
  run_fanout_exactly_once(std::make_shared<tf::SimpleExecutor>(4));
}

// The batch must be published while the other workers are parked: let the
// executor go fully idle between rounds so the release path has to wake them
// (exercises wake_n / the direct cache hand-off, not just queue pushes).
TEST(BatchRelease, FanOutWakesParkedWorkers) {
  tf::WorkStealingOptions opt;
  opt.spin_tries = 0;  // park immediately: every round starts from idlers
  auto executor = tf::make_executor(4, opt);
  for (int round = 0; round < kRepeats; ++round) {
    // Give workers time to reach the idler list before dispatching.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    tf::Taskflow tf(executor);
    std::atomic<int> total{0};
    auto source = tf.emplace([] {});
    for (int i = 0; i < kFanOut; ++i) {
      auto mid = tf.emplace([&total] { total.fetch_add(1, std::memory_order_relaxed); });
      source.precede(mid);
    }
    tf.wait_for_all();
    ASSERT_EQ(total.load(), kFanOut) << "round " << round;
  }
  EXPECT_GT(executor->num_parks(), 0u);
  EXPECT_GT(executor->num_wakes(), 0u);
}

// With stealing disabled entirely, batched tasks must still drain through
// the central queue / park hand-off (the guaranteed-progress path).
TEST(BatchRelease, FanOutDrainsWithStealingDisabled) {
  tf::WorkStealingOptions opt;
  opt.steal_rounds = 0;
  opt.spin_tries = 0;
  opt.balance_wake_probability = 0.0;
  auto executor = tf::make_executor(4, opt);
  run_fanout_exactly_once(executor);
}

// Nested fan-out: each first-layer successor releases its own second layer,
// so many batches are in flight concurrently from different workers.
TEST(BatchRelease, ConcurrentBatchesFromManyWorkers) {
  auto executor = tf::make_executor(4);
  constexpr int kLayer1 = 32;
  constexpr int kLayer2 = 64;
  tf::Taskflow tf(executor);
  std::atomic<int> total{0};
  auto source = tf.emplace([] {});
  for (int i = 0; i < kLayer1; ++i) {
    auto mid = tf.emplace([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    source.precede(mid);
    for (int j = 0; j < kLayer2; ++j) {
      auto leaf = tf.emplace([&total] { total.fetch_add(1, std::memory_order_relaxed); });
      mid.precede(leaf);
    }
  }
  tf.wait_for_all();
  EXPECT_EQ(total.load(), kLayer1 + kLayer1 * kLayer2);
}

// Subflow sources are also published as one batch; a dynamic task spawning a
// wide subflow while other graphs run must not lose children.
TEST(BatchRelease, WideSubflowBatch) {
  auto executor = tf::make_executor(4);
  tf::Taskflow tf(executor);
  std::atomic<int> total{0};
  tf.emplace([&total](tf::SubflowBuilder& sf) {
    for (int i = 0; i < kFanOut; ++i) {
      sf.emplace([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  tf.wait_for_all();
  EXPECT_EQ(total.load(), kFanOut);
}

}  // namespace
