// test_arena - the graph memory layer (DESIGN.md §10): arena slab protocol,
// Graph::reserve/clear/recycle/shrink_to_fit, inline-then-spill successor
// storage with the CSR finalize step, the node-name side table, and graph
// move semantics (owner re-pointing).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "taskflow/taskflow.hpp"

namespace {

// The 128-byte node budget underpins the arena math (cache-aligned slabs
// hold a round number of two-cache-line nodes); the header static_asserts
// it, this keeps the number visible in test reports.
TEST(Arena, NodeSizeBudget) { EXPECT_EQ(sizeof(tf::Node), 128u); }

TEST(Arena, EmptyGraphOwnsNoSlabs) {
  tf::Graph g;
  EXPECT_EQ(g.arena_slabs(), 0u);
  EXPECT_EQ(g.arena_bytes_reserved(), 0u);
}

TEST(Arena, InlineSuccessorsNoSpill) {
  tf::Graph g;
  auto& a = g.emplace_back();
  auto& b = g.emplace_back();
  auto& c = g.emplace_back();
  a.precede(b);
  a.precede(c);  // exactly kInlineSuccessors: stays inline
  ASSERT_EQ(a.num_successors(), 2u);
  EXPECT_EQ(a.successors()[0], &b);
  EXPECT_EQ(a.successors()[1], &c);
  EXPECT_EQ(b.num_dependents(), 1u);
  EXPECT_EQ(c.num_dependents(), 1u);
}

// Slab cookies (DESIGN.md §14): the slab-affine scheduler keys placement on
// "which arena slab does this node live in", exposed as the slab's base
// address.  Nodes emplaced back to back share a cookie until the slab fills;
// foreign pointers (not arena-owned) report 0.
TEST(Arena, SlabCookieIdentifiesOwningSlab) {
  tf::Graph g;
  auto& a = g.emplace_back();
  auto& b = g.emplace_back();
  EXPECT_NE(a.slab_cookie(), 0u);
  EXPECT_EQ(a.slab_cookie(), b.slab_cookie());
  EXPECT_EQ(g.slab_cookie(a), a.slab_cookie());

  tf::Node detached;  // no owning graph: no cookie
  EXPECT_EQ(detached.slab_cookie(), 0u);
}

TEST(Arena, SlabCookieChangesAcrossSlabBoundary) {
  tf::Graph g;
  auto& first = g.emplace_back();
  // Keep emplacing until the arena opens a second slab; the newest node's
  // cookie must then differ from the first node's.
  while (g.arena_slabs() < 2 && g.size() < 100000) g.emplace_back();
  ASSERT_GE(g.arena_slabs(), 2u);
  EXPECT_NE(g.node_at(g.size() - 1).slab_cookie(), first.slab_cookie());
  EXPECT_NE(g.node_at(g.size() - 1).slab_cookie(), 0u);
}

TEST(Arena, SpillPreservesOrder) {
  tf::Graph g;
  auto& hub = g.emplace_back();
  std::vector<tf::Node*> spokes;
  for (int i = 0; i < 50; ++i) {
    auto& s = g.emplace_back();
    hub.precede(s);
    spokes.push_back(&s);
  }
  ASSERT_EQ(hub.num_successors(), 50u);
  for (std::size_t i = 0; i < spokes.size(); ++i) {
    EXPECT_EQ(hub.successors()[i], spokes[i]) << "successor " << i;
  }
}

TEST(Arena, FinalizePacksSpilledArraysContiguously) {
  tf::Graph g;
  auto& hub1 = g.emplace_back();
  auto& hub2 = g.emplace_back();
  std::vector<tf::Node*> spokes1, spokes2;
  for (int i = 0; i < 9; ++i) {
    auto& s = g.emplace_back();
    hub1.precede(s);
    spokes1.push_back(&s);
  }
  for (int i = 0; i < 17; ++i) {
    auto& s = g.emplace_back();
    hub2.precede(s);
    spokes2.push_back(&s);
  }
  g.finalize_edges();
  // Order survives the pack...
  for (std::size_t i = 0; i < spokes1.size(); ++i) {
    EXPECT_EQ(hub1.successors()[i], spokes1[i]);
  }
  for (std::size_t i = 0; i < spokes2.size(); ++i) {
    EXPECT_EQ(hub2.successors()[i], spokes2[i]);
  }
  // ...and the spilled arrays are adjacent in creation order (the CSR
  // property: the scheduler's release sweep walks linear memory).
  EXPECT_EQ(hub1.successor_data() + hub1.num_successors(), hub2.successor_data());
  // Idempotent: a second call must not move anything.
  const tf::Node* const* where = hub1.successor_data();
  g.finalize_edges();
  EXPECT_EQ(hub1.successor_data(), where);
}

TEST(Arena, PrecedeAfterFinalizeRespills) {
  tf::Graph g;
  auto& hub = g.emplace_back();
  for (int i = 0; i < 5; ++i) hub.precede(g.emplace_back());
  g.finalize_edges();
  auto& late = g.emplace_back();
  hub.precede(late);  // capacity was trimmed to size: must grow again
  ASSERT_EQ(hub.num_successors(), 6u);
  EXPECT_EQ(hub.successors()[5], &late);
  g.finalize_edges();
  EXPECT_EQ(hub.successors()[5], &late);
}

TEST(Arena, ReservePreventsSlabGrowth) {
  tf::Graph g;
  g.reserve(10000, 9999);
  const std::size_t slabs = g.arena_slabs();
  EXPECT_EQ(slabs, 1u);
  tf::Node* prev = &g.emplace_back();
  for (int i = 1; i < 10000; ++i) {
    tf::Node* next = &g.emplace_back();
    prev->precede(*next);
    prev = next;
  }
  EXPECT_EQ(g.arena_slabs(), slabs) << "reserved build must not grow the arena";
  EXPECT_EQ(g.size(), 10000u);
}

TEST(Arena, ClearReleasesSlabs) {
  tf::Graph g;
  for (int i = 0; i < 10000; ++i) g.emplace_back();
  EXPECT_GE(g.arena_bytes_reserved(), 10000u * sizeof(tf::Node));
  g.clear();
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.arena_slabs(), 0u);
  EXPECT_EQ(g.arena_bytes_reserved(), 0u);
  // The graph stays usable after clear().
  auto& n = g.emplace_back();
  n.set_name("reborn");
  EXPECT_EQ(n.name(), "reborn");
}

TEST(Arena, RecycleKeepsSlabsAndReusesThem) {
  tf::Graph g;
  for (int i = 0; i < 10000; ++i) g.emplace_back();
  const std::size_t reserved = g.arena_bytes_reserved();
  const std::size_t slabs = g.arena_slabs();
  g.recycle();
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.arena_bytes_reserved(), reserved);
  EXPECT_EQ(g.arena_bytes_used(), 0u);
  // Rebuilding the same shape must not acquire any new slab.
  for (int i = 0; i < 10000; ++i) g.emplace_back();
  EXPECT_EQ(g.arena_slabs(), slabs);
  EXPECT_EQ(g.arena_bytes_reserved(), reserved);
}

TEST(Arena, ShrinkToFitDropsUntouchedSlabs) {
  tf::Graph g;
  for (int i = 0; i < 8; ++i) g.emplace_back();
  g.reserve(100000);  // a big tail slab nothing has touched yet
  const std::size_t before = g.arena_bytes_reserved();
  ASSERT_GE(before, 100000u * sizeof(tf::Node));
  g.shrink_to_fit();
  EXPECT_LT(g.arena_bytes_reserved(), before);
  // The touched slab (holding the 8 live nodes) must survive.
  EXPECT_EQ(g.size(), 8u);
  g.node_at(0).precede(g.node_at(1));
  EXPECT_EQ(g.node_at(0).num_successors(), 1u);
}

TEST(Arena, NamesLiveInSideTable) {
  tf::Graph g;
  auto& a = g.emplace_back();
  auto& b = g.emplace_back();
  EXPECT_TRUE(a.name().empty());
  a.set_name("alpha");
  EXPECT_EQ(a.name(), "alpha");
  EXPECT_TRUE(b.name().empty());
  a.set_name("renamed");
  EXPECT_EQ(a.name(), "renamed");
  g.recycle();
  auto& fresh = g.emplace_back();
  EXPECT_TRUE(fresh.name().empty()) << "names must not leak across recycle()";
}

TEST(Arena, MoveRepointsNodeOwnership) {
  tf::Graph g;
  auto& a = g.emplace_back();
  a.set_name("mover");
  tf::Graph h(std::move(g));
  // Node addresses are stable (arena slabs moved wholesale) and the owner
  // link must now reach h's name table and arena.
  EXPECT_EQ(h.node_at(0).name(), "mover");
  EXPECT_EQ(&h.node_at(0), &a);
  a.set_name("still mover");
  EXPECT_EQ(h.node_at(0).name(), "still mover");
  // Spilling successors after the move must allocate from h's arena.
  for (int i = 0; i < 10; ++i) a.precede(h.emplace_back());
  EXPECT_EQ(a.num_successors(), 10u);

  tf::Graph i;
  i = std::move(h);
  EXPECT_EQ(i.node_at(0).name(), "still mover");
  EXPECT_EQ(i.node_at(0).num_successors(), 10u);
}

TEST(Arena, PointerStabilityAcrossGrowth) {
  tf::Graph g;
  std::vector<tf::Node*> nodes;
  for (int i = 0; i < 50000; ++i) nodes.push_back(&g.emplace_back());
  EXPECT_GT(g.arena_slabs(), 1u) << "test needs multiple slabs to be meaningful";
  for (int i = 0; i < 50000; ++i) {
    ASSERT_EQ(&g.node_at(static_cast<std::size_t>(i)), nodes[static_cast<std::size_t>(i)]);
  }
}

// Topology recycling through the public API: repeat runs of a dynamic graph
// reuse the spawned subgraph's storage in place (no per-iteration Graph).
TEST(Arena, SubflowStorageRecycledAcrossRuns) {
  auto executor_backend = tf::make_executor(2);
  tf::Executor executor(executor_backend);
  tf::Taskflow taskflow;
  std::atomic<int> child_runs{0};
  taskflow.emplace([&child_runs](tf::SubflowBuilder& sf) {
    for (int i = 0; i < 32; ++i) {
      sf.emplace([&child_runs] { child_runs.fetch_add(1); });
    }
  });
  executor.run_n(taskflow, 100).get();
  EXPECT_EQ(child_runs.load(), 32 * 100);
}

}  // namespace
