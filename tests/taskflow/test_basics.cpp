// Basic static-tasking semantics (paper §III-A/B, Listings 1-3).
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

namespace {

// Records a global completion stamp per task, so dependency order can be
// asserted after the run.
class OrderRecorder {
 public:
  tf::Task emplace(tf::Taskflow& tf, const std::string& name) {
    auto t = tf.emplace([this, name] {
      const int stamp = _clock.fetch_add(1, std::memory_order_relaxed);
      std::scoped_lock lock(_mutex);
      _stamps[name] = stamp;
    });
    t.name(name);
    return t;
  }

  // True when task `a` completed before task `b`.
  [[nodiscard]] bool before(const std::string& a, const std::string& b) const {
    return _stamps.at(a) < _stamps.at(b);
  }

  [[nodiscard]] std::size_t count() const { return _stamps.size(); }

 private:
  std::atomic<int> _clock{0};
  mutable std::mutex _mutex;
  std::map<std::string, int> _stamps;
};

TEST(Basics, Listing1DiamondOrder) {
  for (int rep = 0; rep < 20; ++rep) {
    tf::Taskflow tf(4);
    OrderRecorder rec;
    auto A = rec.emplace(tf, "A");
    auto B = rec.emplace(tf, "B");
    auto C = rec.emplace(tf, "C");
    auto D = rec.emplace(tf, "D");
    A.precede(B, C);
    B.precede(D);
    C.precede(D);
    tf.wait_for_all();
    EXPECT_EQ(rec.count(), 4u);
    EXPECT_TRUE(rec.before("A", "B"));
    EXPECT_TRUE(rec.before("A", "C"));
    EXPECT_TRUE(rec.before("B", "D"));
    EXPECT_TRUE(rec.before("C", "D"));
  }
}

TEST(Basics, Figure2StaticGraph) {
  // The seven-task / eight-constraint graph of paper Fig. 2 / Listing 3.
  for (int rep = 0; rep < 10; ++rep) {
    tf::Taskflow tf(4);
    OrderRecorder rec;
    auto a0 = rec.emplace(tf, "a0");
    auto a1 = rec.emplace(tf, "a1");
    auto a2 = rec.emplace(tf, "a2");
    auto a3 = rec.emplace(tf, "a3");
    auto b0 = rec.emplace(tf, "b0");
    auto b1 = rec.emplace(tf, "b1");
    auto b2 = rec.emplace(tf, "b2");
    a0.precede(a1);
    a1.precede(a2, b2);
    a2.precede(a3);
    b0.precede(b1);
    b1.precede(a2, b2);
    b2.precede(a3);
    tf.wait_for_all();
    EXPECT_TRUE(rec.before("a0", "a1"));
    EXPECT_TRUE(rec.before("a1", "a2"));
    EXPECT_TRUE(rec.before("a1", "b2"));
    EXPECT_TRUE(rec.before("a2", "a3"));
    EXPECT_TRUE(rec.before("b0", "b1"));
    EXPECT_TRUE(rec.before("b1", "b2"));
    EXPECT_TRUE(rec.before("b1", "a2"));
    EXPECT_TRUE(rec.before("b2", "a3"));
  }
}

TEST(Basics, EmplaceSingleReturnsTask) {
  tf::Taskflow tf(1);
  std::atomic<int> counter{0};
  auto A = tf.emplace([&] { counter++; });
  EXPECT_FALSE(A.empty());
  EXPECT_FALSE(A.is_placeholder());
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 1);
}

TEST(Basics, EmplaceMultipleReturnsTuple) {
  tf::Taskflow tf(2);
  std::atomic<int> counter{0};
  auto [X, Y, Z] = tf.emplace([&] { counter++; }, [&] { counter++; }, [&] { counter++; });
  EXPECT_FALSE(X.empty());
  EXPECT_FALSE(Y.empty());
  EXPECT_FALSE(Z.empty());
  EXPECT_EQ(tf.num_nodes(), 3u);
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 3);
}

TEST(Basics, DefaultTaskHandleIsEmpty) {
  tf::Task t;
  EXPECT_TRUE(t.empty());
  tf::Task u = t;
  EXPECT_TRUE(u.empty());
  EXPECT_EQ(t, u);
}

TEST(Basics, PlaceholderAssignedLater) {
  tf::Taskflow tf(2);
  std::vector<int> order;
  std::mutex m;
  auto push = [&](int v) {
    std::scoped_lock lock(m);
    order.push_back(v);
  };
  auto pre = tf.emplace([&] { push(1); });
  auto ph = tf.placeholder();
  EXPECT_TRUE(ph.is_placeholder());
  pre.precede(ph);
  // Decide the callable target later (paper §III-A).
  ph.work([&] { push(2); });
  EXPECT_FALSE(ph.is_placeholder());
  tf.wait_for_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Basics, UnassignedPlaceholderActsAsSynchronizer) {
  tf::Taskflow tf(4);
  OrderRecorder rec;
  auto A = rec.emplace(tf, "A");
  auto B = rec.emplace(tf, "B");
  auto sync = tf.placeholder();
  auto C = rec.emplace(tf, "C");
  A.precede(sync);
  B.precede(sync);
  sync.precede(C);
  tf.wait_for_all();
  EXPECT_TRUE(rec.before("A", "C"));
  EXPECT_TRUE(rec.before("B", "C"));
}

TEST(Basics, NamesRoundTrip) {
  tf::Taskflow tf(1);
  auto A = tf.emplace([] {});
  EXPECT_TRUE(A.name().empty());
  A.name("my-task");
  EXPECT_EQ(A.name(), "my-task");
}

TEST(Basics, SucceedMirrorsPrecede) {
  tf::Taskflow tf(2);
  OrderRecorder rec;
  auto A = rec.emplace(tf, "A");
  auto B = rec.emplace(tf, "B");
  auto C = rec.emplace(tf, "C");
  C.succeed(A, B);  // C runs after A and B
  tf.wait_for_all();
  EXPECT_TRUE(rec.before("A", "C"));
  EXPECT_TRUE(rec.before("B", "C"));
}

TEST(Basics, DegreeAccessors) {
  tf::Taskflow tf(1);
  auto A = tf.emplace([] {});
  auto B = tf.emplace([] {});
  auto C = tf.emplace([] {});
  A.precede(B, C);
  B.precede(C);
  EXPECT_EQ(A.num_successors(), 2u);
  EXPECT_EQ(A.num_dependents(), 0u);
  EXPECT_EQ(C.num_dependents(), 2u);
  EXPECT_EQ(C.num_successors(), 0u);
}

TEST(Basics, FreeFunctionPrecede) {
  tf::Taskflow tf(2);
  OrderRecorder rec;
  auto A = rec.emplace(tf, "A");
  auto B = rec.emplace(tf, "B");
  tf.precede(A, B);
  tf.wait_for_all();
  EXPECT_TRUE(rec.before("A", "B"));
}

TEST(Basics, LinearizeChains) {
  tf::Taskflow tf(4);
  OrderRecorder rec;
  std::vector<tf::Task> chain;
  for (int i = 0; i < 8; ++i) chain.push_back(rec.emplace(tf, "t" + std::to_string(i)));
  tf.linearize(chain);
  tf.wait_for_all();
  for (int i = 0; i + 1 < 8; ++i) {
    EXPECT_TRUE(rec.before("t" + std::to_string(i), "t" + std::to_string(i + 1)));
  }
}

TEST(Basics, LinearizeInitializerList) {
  tf::Taskflow tf(2);
  OrderRecorder rec;
  auto A = rec.emplace(tf, "A");
  auto B = rec.emplace(tf, "B");
  auto C = rec.emplace(tf, "C");
  tf.linearize({A, B, C});
  tf.wait_for_all();
  EXPECT_TRUE(rec.before("A", "B"));
  EXPECT_TRUE(rec.before("B", "C"));
}

TEST(Basics, SingleWorkerExecutesEverything) {
  tf::Taskflow tf(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) tf.emplace([&] { counter++; });
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 100);
}

TEST(Basics, IndependentTasksAllRun) {
  tf::Taskflow tf(8);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) tf.emplace([&] { counter++; });
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(Basics, WaitForAllIsReentrant) {
  tf::Taskflow tf(2);
  std::atomic<int> counter{0};
  tf.emplace([&] { counter++; });
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 1);
  // Graph was consumed; a second wait with a new graph runs the new tasks.
  tf.emplace([&] { counter += 10; });
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 11);
  // And waiting with nothing pending is a no-op.
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 11);
}

TEST(Basics, TaskflowDestructorWaitsForDispatchedWork) {
  std::atomic<int> counter{0};
  {
    tf::Taskflow tf(2);
    for (int i = 0; i < 50; ++i) tf.emplace([&] { counter++; });
    tf.silent_dispatch();
    // Destructor must block until all 50 tasks finished.
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
