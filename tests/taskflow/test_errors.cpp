// Exception propagation through the scheduler core (ISSUE 2 tentpole):
// a throwing task must not terminate the process - the first exception is
// captured per topology, remaining tasks are skipped while the topology
// drains its bookkeeping, and the exception rethrows from the dispatch
// handle, run() handle, and wait_for_all().  Parameterized over both
// pluggable executors so the semantics cannot diverge between them.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

namespace {

struct TaskError : std::runtime_error {
  explicit TaskError(int id)
      : std::runtime_error("task error #" + std::to_string(id)), id(id) {}
  int id;
};

class ErrorModel : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 4) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
};

TEST_P(ErrorModel, ThrowSurfacesFromDispatchHandle) {
  tf::Taskflow tf(make());
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) tf.emplace([&] { executed++; });
  tf.emplace([] { throw TaskError(7); });
  auto handle = tf.dispatch();
  EXPECT_THROW(
      {
        try {
          handle.get();
        } catch (const TaskError& e) {
          EXPECT_EQ(e.id, 7);
          throw;
        }
      },
      TaskError);
  EXPECT_TRUE(handle.is_cancelled());  // error flips the topology to draining
  EXPECT_NE(handle.exception(), nullptr);
  // Like a shared future, every observation of the failed run rethrows:
  // wait_for_all reports it again while releasing the topology.
  EXPECT_THROW(tf.wait_for_all(), TaskError);
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST_P(ErrorModel, ThrowSurfacesFromWaitForAll) {
  tf::Taskflow tf(make());
  tf.emplace([] { throw TaskError(1); });
  EXPECT_THROW(tf.wait_for_all(), TaskError);
  // The taskflow stays fully usable after a failed run.
  EXPECT_EQ(tf.num_topologies(), 0u);
  std::atomic<int> executed{0};
  for (int i = 0; i < 20; ++i) tf.emplace([&] { executed++; });
  tf.wait_for_all();
  EXPECT_EQ(executed.load(), 20);
}

TEST_P(ErrorModel, DownstreamTasksAreSkippedButTopologyDrains) {
  tf::Taskflow tf(make());
  std::atomic<bool> b_ran{false};
  std::atomic<bool> c_ran{false};
  auto a = tf.emplace([] { throw TaskError(2); });
  auto b = tf.emplace([&] { b_ran = true; });
  auto c = tf.emplace([&] { c_ran = true; });
  a.precede(b);
  b.precede(c);
  auto handle = tf.dispatch();
  EXPECT_THROW(handle.get(), TaskError);  // future ready => fully drained
  EXPECT_FALSE(b_ran.load());
  EXPECT_FALSE(c_ran.load());
  EXPECT_THROW(tf.wait_for_all(), TaskError);
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST_P(ErrorModel, FirstExceptionWinsUnderConcurrentThrowers) {
  tf::Taskflow tf(make(4));
  constexpr int n = 64;
  for (int i = 0; i < n; ++i) {
    tf.emplace([i] { throw TaskError(i); });
  }
  auto handle = tf.dispatch();
  int caught = -1;
  try {
    handle.get();
  } catch (const TaskError& e) {
    caught = e.id;
  }
  ASSERT_GE(caught, 0);  // exactly one of the concurrent throwers won
  ASSERT_LT(caught, n);
  // Every copy of the shared future observes the same winner.
  try {
    handle.get();
  } catch (const TaskError& e) {
    EXPECT_EQ(e.id, caught);
  }
  EXPECT_THROW(tf.wait_for_all(), TaskError);
}

TEST_P(ErrorModel, JoinedSubflowChildThrowPropagates) {
  tf::Taskflow tf(make());
  std::atomic<bool> successor_ran{false};
  auto parent = tf.emplace([](tf::SubflowBuilder& sf) {
    sf.emplace([] {});
    sf.emplace([] { throw TaskError(3); });
    sf.emplace([] {});
  });
  auto after = tf.emplace([&] { successor_ran = true; });
  parent.precede(after);
  EXPECT_THROW(tf.wait_for_all(), TaskError);
  EXPECT_FALSE(successor_ran.load());  // skipped during the drain
}

TEST_P(ErrorModel, DetachedSubflowChildThrowPropagates) {
  tf::Taskflow tf(make());
  auto parent = tf.emplace([](tf::SubflowBuilder& sf) {
    sf.emplace([] { throw TaskError(4); });
    sf.detach();
  });
  (void)parent;
  EXPECT_THROW(tf.wait_for_all(), TaskError);
}

TEST_P(ErrorModel, NestedSubflowThrowPropagates) {
  tf::Taskflow tf(make());
  tf.emplace([](tf::SubflowBuilder& sf) {
    sf.emplace([](tf::SubflowBuilder& inner) {
      inner.emplace([] { throw TaskError(5); });
    });
  });
  EXPECT_THROW(tf.wait_for_all(), TaskError);
}

TEST_P(ErrorModel, DynamicWorkItselfThrowsMidConstruction) {
  tf::Taskflow tf(make());
  std::atomic<bool> child_ran{false};
  tf.emplace([&](tf::SubflowBuilder& sf) {
    sf.emplace([&] { child_ran = true; });  // built but never made live
    throw TaskError(6);
  });
  EXPECT_THROW(tf.wait_for_all(), TaskError);
  EXPECT_FALSE(child_ran.load());  // the partial subflow is abandoned
}

TEST_P(ErrorModel, FrameworkRunRethrowsAndStaysReusable) {
  tf::Taskflow tf(make());
  tf::Framework fw;
  std::atomic<int> runs{0};
  std::atomic<bool> fail{true};
  fw.emplace([&] {
    runs++;
    if (fail.load()) throw TaskError(8);
  });
  EXPECT_THROW(tf.run(fw).get(), TaskError);
  fail = false;
  tf.run(fw).get();  // re-armed: the same graph runs clean afterwards
  EXPECT_EQ(runs.load(), 2);
  // The failed run's topology is retained until released here - and its
  // stored exception is reported once more on release.
  EXPECT_THROW(tf.wait_for_all(), TaskError);
}

TEST_P(ErrorModel, RunNStopsAtFirstFailingRun) {
  tf::Taskflow tf(make());
  tf::Framework fw;
  std::atomic<int> runs{0};
  fw.emplace([&] {
    if (runs.fetch_add(1) == 1) throw TaskError(9);  // second run fails
  });
  EXPECT_THROW(tf.run_n(fw, 5), TaskError);
  EXPECT_EQ(runs.load(), 2);  // runs 3..5 never started
  EXPECT_THROW(tf.wait_for_all(), TaskError);
}

TEST_P(ErrorModel, ParallelForChunkThrowPropagates) {
  tf::Taskflow tf(make());
  std::vector<int> data(1000, 0);
  tf.parallel_for(data.begin(), data.end(), [&](int& v) {
    if (&v == &data[500]) throw TaskError(10);
    v = 1;
  });
  EXPECT_THROW(tf.wait_for_all(), TaskError);
}

TEST_P(ErrorModel, ReduceWorkerThrowSkipsCombiner) {
  tf::Taskflow tf(make());
  std::vector<long> data(5000, 1);
  long result = -123;  // must remain untouched: the combiner target is skipped
  tf.reduce(data.begin(), data.end(), result, [](long a, long b) -> long {
    if (a + b > 100) throw TaskError(11);
    return a + b;
  });
  EXPECT_THROW(tf.wait_for_all(), TaskError);
  EXPECT_EQ(result, -123);
}

TEST_P(ErrorModel, NonStdExceptionIsCapturedToo) {
  tf::Taskflow tf(make());
  tf.emplace([] { throw 42; });  // not derived from std::exception
  auto handle = tf.dispatch();
  EXPECT_THROW(handle.get(), int);
  EXPECT_THROW(tf.wait_for_all(), int);
}

TEST_P(ErrorModel, MultiTopologyWaitForAllRethrowsFirstInDispatchOrder) {
  tf::Taskflow tf(make());
  std::atomic<int> ok{0};
  for (int i = 0; i < 10; ++i) tf.emplace([&] { ok++; });
  tf.silent_dispatch();  // topology 0: clean
  tf.emplace([] { throw TaskError(12); });
  tf.silent_dispatch();  // topology 1: fails
  tf.emplace([] { throw TaskError(13); });
  // topology 2 (auto-dispatched by wait_for_all): also fails
  int caught = -1;
  try {
    tf.wait_for_all();
  } catch (const TaskError& e) {
    caught = e.id;
  }
  EXPECT_EQ(caught, 12);  // first failing topology in dispatch order
  EXPECT_EQ(ok.load(), 10);
  EXPECT_EQ(tf.num_topologies(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Executors, ErrorModel,
                         ::testing::Values("work_stealing", "simple"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
