// Graph dispatch semantics (paper §III-C, Listing 6): blocking and
// non-blocking executions, topologies, futures.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace {

TEST(Dispatch, FutureBecomesReadyAfterCompletion) {
  tf::Taskflow tf(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) tf.emplace([&] { counter++; });
  auto fut = tf.dispatch();
  fut.get();  // block until finish (paper Listing 6)
  EXPECT_EQ(counter.load(), 100);
}

TEST(Dispatch, NonBlockingReturnsImmediately) {
  tf::Taskflow tf(2);
  std::atomic<bool> release{false};
  std::atomic<bool> done{false};
  tf.emplace([&] {
    while (!release.load()) std::this_thread::yield();
    done = true;
  });
  auto fut = tf.dispatch();
  // The task is blocked on `release`, yet dispatch() already returned:
  EXPECT_FALSE(done.load());
  EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(10)), std::future_status::timeout);
  release = true;
  fut.get();
  EXPECT_TRUE(done.load());
}

TEST(Dispatch, OverlapComputationWithGraphExecution) {
  // The paper's use case: do other work between dispatch() and get().
  tf::Taskflow tf(2);
  std::atomic<long> sum{0};
  for (int i = 0; i < 1000; ++i) tf.emplace([&] { sum.fetch_add(1); });
  auto fut = tf.dispatch();
  long overlap_work = 0;
  for (int i = 0; i < 100000; ++i) overlap_work += i;  // overlapped computation
  fut.get();
  EXPECT_EQ(sum.load(), 1000);
  EXPECT_EQ(overlap_work, 100000L * 99999L / 2);
}

TEST(Dispatch, SilentDispatchIgnoresStatus) {
  tf::Taskflow tf(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) tf.emplace([&] { counter++; });
  tf.silent_dispatch();
  EXPECT_EQ(tf.num_topologies(), 1u);
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(tf.num_topologies(), 0u);  // wait_for_all releases topologies
}

TEST(Dispatch, EmptyGraphFutureIsImmediatelyReady) {
  tf::Taskflow tf(2);
  auto fut = tf.dispatch();
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST(Dispatch, GraphIsConsumedByDispatch) {
  tf::Taskflow tf(2);
  tf.emplace([] {});
  EXPECT_EQ(tf.num_nodes(), 1u);
  tf.silent_dispatch();
  EXPECT_EQ(tf.num_nodes(), 0u);  // present graph is fresh again
  EXPECT_EQ(tf.num_topologies(), 1u);
  tf.wait_for_all();
}

TEST(Dispatch, MultipleTopologiesRunConcurrently) {
  tf::Taskflow tf(4);
  std::atomic<int> counter{0};

  // Listing 6 pattern: dispatch one graph, build another, dispatch again.
  auto A1 = tf.emplace([&] { counter++; });
  auto B1 = tf.emplace([&] { counter++; });
  A1.precede(B1);
  auto f1 = tf.dispatch();

  tf::Task A2, B2;
  std::tie(A2, B2) = tf.emplace([&] { counter++; }, [&] { counter++; });
  B2.precede(A2);  // reversed constraint, as in the paper's listing
  auto f2 = tf.dispatch();

  f1.get();
  f2.get();
  EXPECT_EQ(counter.load(), 4);
}

TEST(Dispatch, ManySmallTopologies) {
  tf::Taskflow tf(4);
  std::atomic<int> counter{0};
  std::vector<std::shared_future<void>> futures;
  for (int k = 0; k < 50; ++k) {
    for (int i = 0; i < 20; ++i) tf.emplace([&] { counter++; });
    futures.push_back(tf.dispatch());
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
  EXPECT_EQ(tf.num_topologies(), 50u);
  tf.wait_for_all();
  EXPECT_EQ(tf.num_topologies(), 0u);
}

TEST(Dispatch, WaitForTopologiesKeepsThemAlive) {
  tf::Taskflow tf(2);
  tf.emplace([] {}).name("kept");
  tf.silent_dispatch();
  tf.wait_for_topologies();
  EXPECT_EQ(tf.num_topologies(), 1u);
  const auto dot = tf.dump_topologies();
  EXPECT_NE(dot.find("kept"), std::string::npos);
  tf.wait_for_all();
}

TEST(Dispatch, SharedFutureCopiesAllObserveCompletion) {
  tf::Taskflow tf(2);
  std::atomic<int> counter{0};
  tf.emplace([&] { counter++; });
  auto f1 = tf.dispatch();
  auto f2 = f1;  // shared_future is copyable (paper §III-C)
  f1.get();
  f2.get();
  EXPECT_EQ(counter.load(), 1);
}

// dispatch() moves the working graph into the topology.  The graph move
// re-points every node's owner link, and spilled successor arrays plus the
// name side table ride along wholesale - ordering and names must survive.
TEST(Dispatch, MovedGraphKeepsSpilledEdgesAndNames) {
  tf::Taskflow tf(4);
  std::atomic<bool> hub_done{false};
  std::atomic<int> order_violations{0};
  std::atomic<int> spokes_run{0};
  auto hub = tf.emplace([&] { hub_done = true; }).name("hub-of-spokes");
  for (int i = 0; i < 64; ++i) {  // 64 successors: far past the inline pair
    auto spoke = tf.emplace([&] {
      if (!hub_done.load()) order_violations++;
      spokes_run++;
    });
    hub.precede(spoke);
  }
  tf.dispatch().get();
  EXPECT_EQ(spokes_run.load(), 64);
  EXPECT_EQ(order_violations.load(), 0);
  // The name table moved with the graph: the retained topology still
  // renders the hub by name.
  EXPECT_NE(tf.dump_topologies().find("hub-of-spokes"), std::string::npos);
  tf.wait_for_all();
}

// Every dispatch round rebuilds the working graph from scratch while the
// previous rounds' topologies (and their moved arenas) are still in flight:
// per-round spilled fan-outs must stay correct and isolated.
TEST(Dispatch, RepeatedSpilledDispatchesStayCorrect) {
  tf::Taskflow tf(4);
  std::atomic<bool> hub_done[100] = {};
  std::atomic<int> spokes{0};
  std::atomic<int> order_violations{0};
  for (int round = 0; round < 100; ++round) {
    auto hub = tf.emplace([&, round] { hub_done[round] = true; });
    for (int i = 0; i < 16; ++i) {
      auto s = tf.emplace([&, round] {
        if (!hub_done[round].load()) order_violations++;
        spokes++;
      });
      hub.precede(s);
    }
    tf.silent_dispatch();
  }
  tf.wait_for_all();
  EXPECT_EQ(spokes.load(), 1600);
  EXPECT_EQ(order_violations.load(), 0);
}

}  // namespace
