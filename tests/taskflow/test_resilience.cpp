// Resilience policies (DESIGN.md §8): per-task retry/backoff via the
// executor timer wheel, fallback degradation handlers, RunPolicy deadlines
// and cancel_after, the executor watchdog, and shutdown(drain|abort) -
// including destruction with in-flight topologies and pending asyncs.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace std::chrono_literals;

struct Flaky : std::runtime_error {
  Flaky() : std::runtime_error("flaky failure") {}
};

struct Fatal : std::runtime_error {
  Fatal() : std::runtime_error("fatal failure") {}
};

// Cooperative stall: burns time until the topology drains (cancel, sibling
// error, or deadline expiry).  Hard-bounded so a resilience bug fails the
// test instead of hanging it.
void spin_until_cancelled() {
  const auto hard_stop = std::chrono::steady_clock::now() + 60s;
  while (!tf::this_task::is_cancelled() &&
         std::chrono::steady_clock::now() < hard_stop) {
    std::this_thread::yield();
  }
}

// Both scheduler backends share the retry/fallback plumbing through the
// common run_task path, so the policy tests run against each.
class ResilienceModel : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 4) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
};

// ---------------------------------------------------------------------------
// Retry
// ---------------------------------------------------------------------------

// The acceptance graph: a task under retry(3) that fails twice and then
// succeeds completes its topology with no error surfaced.
TEST_P(ResilienceModel, RetryConvergesAfterTransientFailures) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  std::atomic<bool> downstream{false};
  auto flaky = taskflow.emplace([&] {
    if (attempts.fetch_add(1) < 2) throw Flaky();
  });
  flaky.retry(3);
  EXPECT_TRUE(flaky.has_policy());
  flaky.precede(taskflow.emplace([&] { downstream = true; }));

  auto handle = executor.run(taskflow);
  EXPECT_NO_THROW(handle.get());
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_TRUE(downstream.load());
  EXPECT_FALSE(handle.is_cancelled());
}

TEST_P(ResilienceModel, RetryExhaustionRethrowsAndDrains) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  std::atomic<bool> downstream{false};
  auto doomed = taskflow.emplace([&] {
    attempts++;
    throw Flaky();
  });
  doomed.retry(2);  // 3 total attempts, all fail
  doomed.precede(taskflow.emplace([&] { downstream = true; }));

  auto handle = executor.run(taskflow);
  EXPECT_THROW(handle.get(), Flaky);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_FALSE(downstream.load());  // exhaustion drains: successors skipped
  EXPECT_TRUE(handle.is_cancelled());
}

TEST_P(ResilienceModel, RetryBudgetResetsAcrossRepeatRuns) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  // Fails once per run, succeeds on the in-run retry: every repeat of run_n
  // must get a fresh budget (arm() resets failed_attempts).
  std::atomic<int> in_run{0};
  auto first = taskflow.emplace([&] { in_run = 0; });
  auto flaky = taskflow.emplace([&] {
    attempts++;
    if (in_run.fetch_add(1) == 0) throw Flaky();
  });
  first.precede(flaky);
  flaky.retry(1);

  EXPECT_NO_THROW(executor.run_n(taskflow, 5).get());
  EXPECT_EQ(attempts.load(), 10);  // 2 attempts per run, 5 runs
}

TEST_P(ResilienceModel, BackoffDelaysRetriesWithoutBlockingWorkers) {
  tf::Executor executor(make(2));
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  tf::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff = 25ms;
  policy.multiplier = 1.0;
  policy.jitter = 0.0;
  taskflow.emplace([&] {
    if (attempts.fetch_add(1) < 2) throw Flaky();
  }).retry(policy);

  const auto begin = std::chrono::steady_clock::now();
  auto handle = executor.run(taskflow);
  // While the retried node parks on the timer wheel, the workers stay free:
  // independent asyncs must complete during the ~50ms of accumulated backoff.
  std::vector<std::future<int>> fills;
  for (int i = 0; i < 16; ++i) fills.push_back(executor.async([i] { return i; }));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fills[static_cast<std::size_t>(i)].get(), i);

  EXPECT_NO_THROW(handle.get());
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_GE(elapsed, 40ms);  // two backoff waits of 25ms (wheel: >= requested)
}

TEST_P(ResilienceModel, RetryIfFilterStopsUnretryableErrors) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  tf::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff = 0ms;
  policy.retry_if = [](const std::exception_ptr& e) {
    try {
      std::rethrow_exception(e);
    } catch (const Flaky&) {
      return true;
    } catch (...) {
      return false;
    }
  };
  taskflow.emplace([&] {
    if (attempts.fetch_add(1) == 0) throw Flaky();  // retried
    throw Fatal();                                  // filtered: no retry
  }).retry(policy);

  auto handle = executor.run(taskflow);
  EXPECT_THROW(handle.get(), Fatal);
  EXPECT_EQ(attempts.load(), 2);
}

TEST_P(ResilienceModel, SubflowTasksCarryRetryPolicies) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  std::atomic<int> parent_attempts{0};
  std::atomic<int> child_attempts{0};
  std::atomic<int> child_runs{0};
  // The dynamic parent fails once *after* building children: the partially
  // built subflow must be dropped and respawned fresh on the retry, so the
  // children run exactly once.  One child is itself flaky with its own
  // retry policy.
  taskflow.emplace([&](tf::SubflowBuilder& sf) {
    sf.emplace([&] { child_runs++; });
    sf.emplace([&] {
      if (child_attempts.fetch_add(1) == 0) throw Flaky();
      child_runs++;
    }).retry(1);
    if (parent_attempts.fetch_add(1) == 0) throw Flaky();
  }).retry(1);

  EXPECT_NO_THROW(executor.run(taskflow).get());
  EXPECT_EQ(parent_attempts.load(), 2);
  EXPECT_EQ(child_attempts.load(), 2);  // spawned once, retried once
  EXPECT_EQ(child_runs.load(), 2);      // each child completed exactly once
}

// ---------------------------------------------------------------------------
// Fallback
// ---------------------------------------------------------------------------

// The acceptance graph: a permanently failing task with a fallback lets the
// topology complete successfully.
TEST_P(ResilienceModel, FallbackDegradesInsteadOfFailing) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  std::atomic<bool> degraded{false};
  std::atomic<bool> downstream{false};
  auto doomed = taskflow.emplace([&] {
    attempts++;
    throw Flaky();
  });
  doomed.retry(2).fallback([&] { degraded = true; });
  doomed.precede(taskflow.emplace([&] { downstream = true; }));

  auto handle = executor.run(taskflow);
  EXPECT_NO_THROW(handle.get());
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_TRUE(degraded.load());
  EXPECT_TRUE(downstream.load());  // the topology completed normally
  EXPECT_FALSE(handle.is_cancelled());
}

TEST_P(ResilienceModel, FallbackWithoutRetryFiresOnFirstFailure) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  std::atomic<int> attempts{0};
  std::atomic<bool> degraded{false};
  taskflow.emplace([&] {
    attempts++;
    throw Flaky();
  }).fallback([&] { degraded = true; });

  EXPECT_NO_THROW(executor.run(taskflow).get());
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_TRUE(degraded.load());
}

TEST_P(ResilienceModel, ThrowingFallbackSurfacesItsOwnError) {
  tf::Executor executor(make());
  tf::Taskflow taskflow;
  taskflow.emplace([] { throw Flaky(); }).fallback([] { throw Fatal(); });

  auto handle = executor.run(taskflow);
  EXPECT_THROW(handle.get(), Fatal);  // the fallback's error, not the task's
  EXPECT_TRUE(handle.is_cancelled());
}

INSTANTIATE_TEST_SUITE_P(Executors, ResilienceModel,
                         ::testing::Values("work_stealing", "simple"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Deadlines (RunPolicy) and cancel_after
// ---------------------------------------------------------------------------

// The acceptance graph: a 50ms deadline on a stalled (cooperatively
// spinning) graph returns TimeoutError promptly.
TEST(Resilience, DeadlineExpiryDeliversTimeoutError) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<bool> downstream{false};
  auto stall = taskflow.emplace([] { spin_until_cancelled(); });
  stall.precede(taskflow.emplace([&] { downstream = true; }));

  const auto begin = std::chrono::steady_clock::now();
  auto handle = executor.run(taskflow, tf::RunPolicy{50ms});
  EXPECT_THROW(handle.get(), tf::TimeoutError);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_GE(elapsed, 45ms);  // the wheel never fires early
  EXPECT_LT(elapsed, 30s);   // ...and the drain is prompt, not the hard stop
  EXPECT_TRUE(handle.timed_out());
  EXPECT_TRUE(handle.is_cancelled());
  EXPECT_FALSE(downstream.load());  // expiry drains: successors skipped
}

TEST(Resilience, DeadlineMetInTimeLeavesRunUntouched) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] { runs++; });

  // Generous budget: the run finishes long before expiry, the completion
  // path withdraws the timer, and nothing times out - repeatedly.
  for (int i = 0; i < 20; ++i) {
    auto handle = executor.run(taskflow, tf::RunPolicy{10s});
    EXPECT_NO_THROW(handle.get());
    EXPECT_FALSE(handle.timed_out());
    EXPECT_FALSE(handle.is_cancelled());
  }
  EXPECT_EQ(runs.load(), 20);
}

TEST(Resilience, DeadlineBoundsWholeRepeatSequence) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] {
    runs++;
    std::this_thread::sleep_for(5ms);
  });

  // One 60ms budget across all repeats: far fewer than 1000 runs fit.
  auto handle = executor.run_n(taskflow, 1000, tf::RunPolicy{60ms});
  EXPECT_THROW(handle.get(), tf::TimeoutError);
  EXPECT_TRUE(handle.timed_out());
  EXPECT_LT(runs.load(), 1000);
  executor.wait_for_all();
}

TEST(Resilience, ThisTaskDeadlineExposesRemainingBudget) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<bool> saw_budget{false};
  std::atomic<bool> saw_none{false};
  taskflow.emplace([&] {
    if (auto remaining = tf::this_task::deadline()) {
      saw_budget = *remaining > 0ns && *remaining <= 10s;
    }
  });

  executor.run(taskflow, tf::RunPolicy{10s}).get();
  EXPECT_TRUE(saw_budget.load());

  tf::Taskflow unbounded;
  unbounded.emplace([&] { saw_none = !tf::this_task::deadline().has_value(); });
  executor.run(unbounded).get();
  EXPECT_TRUE(saw_none.load());
  EXPECT_FALSE(tf::this_task::deadline().has_value());  // outside any task
}

TEST(Resilience, CancelAfterIsAPlainDeferredCancel) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  taskflow.emplace([] { spin_until_cancelled(); });

  auto handle = executor.run(taskflow);
  handle.cancel_after(20ms);
  EXPECT_NO_THROW(handle.get());  // unlike a deadline: no TimeoutError
  EXPECT_TRUE(handle.is_cancelled());
  EXPECT_FALSE(handle.timed_out());
}

TEST(Resilience, ExplicitCancelBeatsCancelAfter) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] {
    runs++;
    spin_until_cancelled();
  });

  auto handle = executor.run(taskflow);
  handle.cancel_after(10s);  // would fire far in the future...
  handle.cancel();           // ...but the explicit cancel lands now
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(handle.get());
  EXPECT_LT(std::chrono::steady_clock::now() - begin, 9s);
  EXPECT_TRUE(handle.is_cancelled());
  EXPECT_FALSE(handle.timed_out());
  executor.wait_for_all();  // the stale 10s timer pins nothing but the state
}

TEST(Resilience, CancelAfterRacesDeadlineCoherently) {
  // cancel_after and a RunPolicy deadline race on the same drain: whichever
  // fires first wins, and the handle reports exactly one coherent outcome.
  for (int i = 0; i < 10; ++i) {
    tf::Executor executor(2);
    tf::Taskflow taskflow;
    taskflow.emplace([] { spin_until_cancelled(); });
    auto handle = executor.run(taskflow, tf::RunPolicy{std::chrono::milliseconds(5 + i)});
    handle.cancel_after(std::chrono::milliseconds(15 - i));
    bool threw = false;
    try {
      handle.get();
    } catch (const tf::TimeoutError&) {
      threw = true;
    }
    EXPECT_EQ(threw, handle.timed_out()) << "iteration " << i;
    EXPECT_TRUE(handle.is_cancelled()) << "iteration " << i;
  }
}

TEST(Resilience, StallReportNotesPoliciesAndDeadline) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<bool> entered{false};
  auto stall = taskflow.emplace([&] {
    entered = true;
    spin_until_cancelled();
  });
  stall.retry(3).fallback([] {});

  auto handle = executor.run(taskflow, tf::RunPolicy{10s});
  while (!entered.load()) std::this_thread::yield();
  const std::string report = executor.stall_report();
  EXPECT_NE(report.find("retry/fallback policies"), std::string::npos) << report;
  EXPECT_NE(report.find("deadline in"), std::string::npos) << report;
  handle.cancel();
  handle.get();
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(Resilience, WatchdogFlagsLongRunningTask) {
  tf::Executor executor(2);
  std::atomic<int> stall_reports{0};
  std::atomic<bool> saw_busy_worker{false};
  tf::WatchdogOptions options;
  options.period = 10ms;
  options.task_threshold = 25ms;
  options.on_stall = [&](const std::string& report) {
    stall_reports++;
    if (report.find("busy in one task") != std::string::npos) {
      saw_busy_worker = true;
    }
  };
  executor.enable_watchdog(options);
  EXPECT_TRUE(executor.watchdog_enabled());

  tf::Taskflow taskflow;
  std::atomic<bool> release{false};
  taskflow.emplace([&] {
    const auto hard_stop = std::chrono::steady_clock::now() + 60s;
    while (!release.load() && std::chrono::steady_clock::now() < hard_stop) {
      std::this_thread::yield();
    }
  });
  auto handle = executor.run(taskflow);
  // The watchdog (10ms period, 25ms threshold) must flag the stuck worker
  // well within this bound.
  const auto flag_deadline = std::chrono::steady_clock::now() + 30s;
  while (stall_reports.load() == 0 &&
         std::chrono::steady_clock::now() < flag_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  release = true;
  handle.get();
  EXPECT_GE(stall_reports.load(), 1);
  EXPECT_TRUE(saw_busy_worker.load());

  executor.disable_watchdog();
  EXPECT_FALSE(executor.watchdog_enabled());
}

TEST(Resilience, WatchdogEnforcesDeadlines) {
  // Belt-and-braces sweep: even with the hook unset, an enabled watchdog
  // expires overdue runs (the timer wheel normally wins the race; either
  // path must deliver exactly one TimeoutError).
  tf::Executor executor(2);
  executor.enable_watchdog(5ms);
  tf::Taskflow taskflow;
  taskflow.emplace([] { spin_until_cancelled(); });
  auto handle = executor.run(taskflow, tf::RunPolicy{20ms});
  EXPECT_THROW(handle.get(), tf::TimeoutError);
  EXPECT_TRUE(handle.timed_out());
  executor.disable_watchdog();
}

TEST(Resilience, QuietWatchdogNeverFires) {
  tf::Executor executor(2);
  std::atomic<int> stall_reports{0};
  tf::WatchdogOptions options;
  options.period = 5ms;
  options.task_threshold = 10s;  // nothing here runs remotely that long
  options.on_stall = [&](const std::string&) { stall_reports++; };
  executor.enable_watchdog(options);

  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  for (int i = 0; i < 32; ++i) taskflow.emplace([&] { runs++; });
  executor.run_n(taskflow, 10).get();
  executor.disable_watchdog();
  EXPECT_EQ(runs.load(), 320);
  EXPECT_EQ(stall_reports.load(), 0);
}

// ---------------------------------------------------------------------------
// Shutdown and destruction
// ---------------------------------------------------------------------------

TEST(Resilience, ShutdownDrainLetsWorkFinishThenRejects) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&] {
    std::this_thread::sleep_for(1ms);
    runs++;
  });
  auto handle = executor.run_n(taskflow, 20);
  auto async_future = executor.async([] { return 7; });

  executor.shutdown();  // drain: everything submitted completes normally
  EXPECT_TRUE(executor.is_shutdown());
  EXPECT_NO_THROW(handle.get());
  EXPECT_EQ(runs.load(), 20);
  EXPECT_EQ(async_future.get(), 7);

  EXPECT_THROW((void)executor.run(taskflow), tf::ShutdownError);
  EXPECT_THROW((void)executor.run_n(taskflow, 3), tf::ShutdownError);
  EXPECT_THROW((void)executor.run_until(taskflow, [] { return true; }),
               tf::ShutdownError);
  EXPECT_THROW((void)executor.async([] {}), tf::ShutdownError);
  executor.shutdown();  // idempotent
  EXPECT_EQ(executor.num_topologies(), 0u);
}

TEST(Resilience, ShutdownAbortCancelsQueuedAndInFlightRuns) {
  tf::Executor executor(2);
  tf::Taskflow slow;
  std::atomic<int> started{0};
  slow.emplace([&] {
    started++;
    spin_until_cancelled();
  });
  // One in flight + several queued behind it on the same taskflow, plus an
  // independent repeat run; abort must cancel them all and return promptly.
  std::vector<tf::ExecutionHandle> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(executor.run(slow));
  tf::Taskflow repeat;
  repeat.emplace([] { spin_until_cancelled(); });
  handles.push_back(executor.run_n(repeat, 1000));
  while (started.load() == 0) std::this_thread::yield();

  const auto begin = std::chrono::steady_clock::now();
  executor.shutdown(tf::ShutdownMode::abort);
  EXPECT_LT(std::chrono::steady_clock::now() - begin, 30s);
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait_for(0s), std::future_status::ready);
    EXPECT_NO_THROW(handle.get());  // cancelled, not failed
    EXPECT_TRUE(handle.is_cancelled());
  }
  EXPECT_LT(started.load(), 1004);  // queued runs were skipped, not executed
  EXPECT_EQ(executor.num_topologies(), 0u);
}

TEST(Resilience, ShutdownAbortKeepsAsyncPromises) {
  tf::Executor executor(2);
  std::atomic<bool> release{false};
  auto blocker = executor.async([&] {
    const auto hard_stop = std::chrono::steady_clock::now() + 60s;
    while (!release.load() && std::chrono::steady_clock::now() < hard_stop) {
      std::this_thread::yield();
    }
    return 1;
  });
  std::thread releaser([&] {
    std::this_thread::sleep_for(10ms);
    release = true;
  });
  // Abort must still wait for the async (its promise must be kept).
  executor.shutdown(tf::ShutdownMode::abort);
  EXPECT_EQ(blocker.get(), 1);
  releaser.join();
  EXPECT_EQ(executor.num_asyncs(), 0u);
}

TEST(Resilience, DestructorDrainsInFlightTopologiesAndAsyncs) {
  // The destruction contract: ~Executor() == shutdown(drain).  Handles and
  // futures outlive the executor (shared state) and must all be complete
  // the moment the destructor returned.
  std::vector<tf::ExecutionHandle> handles;
  std::vector<std::future<int>> futures;
  tf::Taskflow taskflow;  // must outlive its runs, so declared first
  std::atomic<int> runs{0};
  taskflow.emplace([&] {
    std::this_thread::sleep_for(1ms);
    runs++;
  });
  {
    tf::Executor executor(4);
    for (int i = 0; i < 8; ++i) handles.push_back(executor.run_n(taskflow, 4));
    for (int i = 0; i < 8; ++i) futures.push_back(executor.async([i] { return i; }));
  }  // destructor: drain everything, then tear down workers and timer wheel
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait_for(0s), std::future_status::ready);
    EXPECT_NO_THROW(handle.get());
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  EXPECT_EQ(runs.load(), 32);
}

TEST(Resilience, DestructionUnderMultiClientHammer) {
  // 8 client threads hammer one executor with runs, repeats, asyncs, retried
  // flaky tasks, and deadline runs; once they finish submitting, the
  // executor is destroyed with much of that work still in flight.  Run under
  // TSan/ASan this is the satellite's destruction-safety gate.
  constexpr int kClients = 8;
  constexpr int kItersPerClient = 6;
  std::vector<std::unique_ptr<tf::Taskflow>> flows;
  std::vector<tf::ExecutionHandle> handles[kClients];
  std::vector<std::future<int>> futures[kClients];
  std::atomic<int> attempts{0};
  for (int c = 0; c < kClients; ++c) {
    auto flow = std::make_unique<tf::Taskflow>();
    auto flaky = flow->emplace([&attempts] {
      if (attempts.fetch_add(1) % 3 == 0) throw Flaky();
    });
    flaky.retry(4).fallback([] {});
    flaky.precede(flow->emplace([] { std::this_thread::yield(); }));
    flows.push_back(std::move(flow));
  }
  {
    tf::Executor executor(4);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kItersPerClient; ++i) {
          handles[c].push_back(executor.run(*flows[static_cast<std::size_t>(c)]));
          handles[c].push_back(
              executor.run_n(*flows[static_cast<std::size_t>(c)], 3));
          handles[c].push_back(executor.run(*flows[static_cast<std::size_t>(c)],
                                            tf::RunPolicy{30s}));
          futures[c].push_back(executor.async([i] { return i; }));
        }
      });
    }
    for (auto& t : clients) t.join();
  }  // destructor races nothing: submissions ended, the drain begins
  for (int c = 0; c < kClients; ++c) {
    for (auto& handle : handles[c]) {
      EXPECT_EQ(handle.wait_for(0s), std::future_status::ready);
      EXPECT_NO_THROW(handle.get());  // every flake retried or degraded
    }
    for (std::size_t i = 0; i < futures[c].size(); ++i) {
      EXPECT_EQ(futures[c][i].get(), static_cast<int>(i));
    }
  }
}

TEST(Resilience, RetriesAndFallbacksConvergeUnderConcurrentClients) {
  // Many clients, distinct taskflows, every task flaky: retries must
  // converge (or degrade via fallback) for every single run - no handle may
  // ever deliver an error.
  constexpr int kClients = 8;
  tf::Executor executor(4);
  std::atomic<int> degraded{0};
  std::atomic<int> converged{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      tf::Taskflow flow;
      std::atomic<int> node_attempts[4] = {};
      for (int i = 0; i < 4; ++i) {
        // Node i fails its first i attempts; node 3 fails one attempt more
        // than its budget allows and must degrade through its fallback.
        const int failures = (i == 3) ? 3 : i;
        tf::RetryPolicy policy;
        policy.max_attempts = 3;
        policy.backoff = (c % 2 == 0) ? 0ms : 1ms;  // mixed: direct + wheel
        policy.jitter = 0.5;
        auto task = flow.emplace([&node_attempts, i, failures, &converged] {
          if (node_attempts[i].fetch_add(1) < failures) throw Flaky();
          converged++;
        });
        task.retry(policy);
        task.fallback([&degraded] { degraded++; });
      }
      for (int iter = 0; iter < 5; ++iter) {
        for (auto& a : node_attempts) a = 0;
        EXPECT_NO_THROW(executor.run(flow).get()) << "client " << c;
      }
    });
  }
  for (auto& t : clients) t.join();
  executor.wait_for_all();
  EXPECT_EQ(degraded.load(), kClients * 5);       // node 3, every run
  EXPECT_EQ(converged.load(), kClients * 5 * 3);  // nodes 0-2, every run
}

// ---------------------------------------------------------------------------
// Topology recycling interplay (DESIGN.md §10)
// ---------------------------------------------------------------------------
// run_n replays re-arm one Topology in place and recycle spawned subflow
// graphs instead of rebuilding them; these tests pin the recycled state
// against the resilience layer - retry budgets, fallbacks, deadlines and
// cancellation must behave exactly as on a freshly built topology.

TEST(Resilience, ThousandReplaysKeepOrderingOnRecycledTopology) {
  tf::Executor executor(4);
  tf::Taskflow taskflow;
  std::atomic<int> stage{0};
  std::atomic<int> violations{0};
  auto a = taskflow.emplace([&] { stage = 1; });
  auto b = taskflow.emplace([&] { if (stage.load() != 1) violations++; });
  auto c = taskflow.emplace([&] { if (stage.load() != 1) violations++; });
  auto d = taskflow.emplace([&] { if (stage.exchange(0) != 1) violations++; });
  a.precede(b);
  a.precede(c);
  b.precede(d);
  c.precede(d);
  // Every replay re-arms the same join counters and walks the same packed
  // successor spans: a stale counter or edge would break the diamond order.
  EXPECT_NO_THROW(executor.run_n(taskflow, 1000).get());
  EXPECT_EQ(violations.load(), 0);
}

TEST(Resilience, RecycledSubflowRetriesAcrossManyReplays) {
  tf::Executor executor(4);
  tf::Taskflow taskflow;
  std::atomic<int> parent_attempts{0};
  std::atomic<int> child_runs{0};
  std::atomic<int> in_run{0};
  auto reset = taskflow.emplace([&] { in_run = 0; });
  auto parent = taskflow.emplace([&](tf::SubflowBuilder& sf) {
    parent_attempts++;
    for (int i = 0; i < 4; ++i) sf.emplace([&] { child_runs++; });
    if (in_run.fetch_add(1) == 0) throw Flaky();  // first attempt, every run
  });
  reset.precede(parent);
  parent.retry(1);

  constexpr int kRuns = 1000;
  EXPECT_NO_THROW(executor.run_n(taskflow, kRuns).get());
  // Fresh retry budget per replay: two attempts each run.  Only the
  // successful attempt's children became live, built in the subgraph the
  // failed attempt (and the previous 999 runs) recycled in place.
  EXPECT_EQ(parent_attempts.load(), 2 * kRuns);
  EXPECT_EQ(child_runs.load(), 4 * kRuns);
}

TEST(Resilience, FallbackAbandonsRecycledSubflowChildren) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<int> degraded{0};
  std::atomic<int> child_runs{0};
  taskflow.emplace([&](tf::SubflowBuilder& sf) {
    sf.emplace([&] { child_runs++; });
    throw Flaky();  // children are never made live
  }).fallback([&] { degraded++; });

  constexpr int kRuns = 200;
  EXPECT_NO_THROW(executor.run_n(taskflow, kRuns).get());
  EXPECT_EQ(degraded.load(), kRuns);  // degrade once per replay...
  EXPECT_EQ(child_runs.load(), 0);    // ...abandoned children never run
}

TEST(Resilience, DeadlineMidReplaysLeavesTaskflowReusable) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<int> child_runs{0};
  taskflow.emplace([&](tf::SubflowBuilder& sf) {
    sf.emplace([&] {
      child_runs++;
      std::this_thread::sleep_for(1ms);
    });
  });

  auto handle = executor.run_n(taskflow, 1000000, tf::RunPolicy{50ms});
  EXPECT_THROW(handle.get(), tf::TimeoutError);
  EXPECT_TRUE(handle.timed_out());
  EXPECT_LT(child_runs.load(), 1000000);

  // Expiry drained the sequence mid-replay, possibly with the subflow
  // half-spawned; a fresh run of the same taskflow must re-arm the recycled
  // topology cleanly and complete every remaining replay.
  child_runs = 0;
  auto again = executor.run_n(taskflow, 50);
  EXPECT_NO_THROW(again.get());
  EXPECT_FALSE(again.timed_out());
  EXPECT_EQ(child_runs.load(), 50);
}

TEST(Resilience, CancelMidReplaysLeavesTaskflowReusable) {
  tf::Executor executor(2);
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&](tf::SubflowBuilder& sf) {
    runs++;
    for (int i = 0; i < 8; ++i) sf.emplace([] {});
  });

  auto handle = executor.run_n(taskflow, 1000000);
  while (runs.load() < 10) std::this_thread::yield();
  handle.cancel();
  EXPECT_NO_THROW(handle.get());  // cancellation is not an error
  EXPECT_TRUE(handle.is_cancelled());
  EXPECT_LT(runs.load(), 1000000);

  const int after_cancel = runs.load();
  auto again = executor.run_n(taskflow, 25);
  EXPECT_NO_THROW(again.get());
  EXPECT_FALSE(again.is_cancelled());
  EXPECT_EQ(runs.load(), after_cancel + 25);
}

TEST(Resilience, CancelDrainsLiveRecycledSubflowChildren) {
  tf::Executor executor(4);
  tf::Taskflow taskflow;
  std::atomic<int> spawned{0};
  taskflow.emplace([&](tf::SubflowBuilder& sf) {
    for (int i = 0; i < 4; ++i) {
      sf.emplace([&] {
        spawned++;
        spin_until_cancelled();
      });
    }
  });

  // Children of a replayed (recycled) subflow are live and stalling when
  // the cancel lands: they must observe it and drain without error.
  auto handle = executor.run_n(taskflow, 100);
  while (spawned.load() == 0) std::this_thread::yield();
  handle.cancel();
  EXPECT_NO_THROW(handle.get());
  EXPECT_TRUE(handle.is_cancelled());
  executor.wait_for_all();
}

}  // namespace
