// test_alloc - allocation-counting harness (ISSUE 6 satellite): a global
// operator-new interposer counts every heap allocation made by this binary,
// proving the arena claims of DESIGN.md §10 hold - O(1) amortized heap
// allocations per emplace/precede (zero after Graph::reserve), recycled
// storage on run_n replays, and pooled Executor::async boxes.
//
// Built only when REPRO_ALLOC_TESTS is ON and no sanitizer is active:
// ASan/TSan replace the allocator themselves and must win.  The bounds below
// are deliberately loose (2-4x slack over measured values) - they exist to
// catch a return to per-node/per-edge heap traffic (a 10-1000x regression),
// not to pin exact allocation counts of the standard library.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#error "test_alloc must not be built under a sanitizer (see CMakeLists.txt)"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "taskflow/taskflow.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size == 0 ? 1 : size);
  } else if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    p = nullptr;
  }
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

// The interposer: every flavor the library (and the standard library) may
// call.  posix_memalign memory is free()-compatible, so one delete suffices.
void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

TEST(Alloc, InterposerCounts) {
  const std::size_t before = allocation_count();
  auto* p = new int(42);
  EXPECT_GT(allocation_count(), before);
  delete p;
}

// The headline claim: after reserve(nodes, edges), building the graph
// performs ZERO heap allocations - nodes and edges come out of the slab.
TEST(Alloc, ReservedChainAllocatesNothing) {
  constexpr std::size_t kNodes = 100000;
  tf::Graph g;
  g.reserve(kNodes, kNodes - 1);
  const std::size_t before = allocation_count();
  tf::Node* prev = &g.emplace_back();
  for (std::size_t i = 1; i < kNodes; ++i) {
    tf::Node* next = &g.emplace_back();
    prev->precede(*next);
    prev = next;
  }
  EXPECT_EQ(allocation_count() - before, 0u);
  EXPECT_EQ(g.size(), kNodes);
}

// Heavy fan-out spills successor arrays, but spills are arena chunks: a
// reserved build stays within the reserved slab's growth slack.
TEST(Alloc, ReservedFanoutAllocatesAlmostNothing) {
  constexpr std::size_t kSpokes = 100000;
  tf::Graph g;
  g.reserve(kSpokes + 1, kSpokes);
  const std::size_t before = allocation_count();
  tf::Node& hub = g.emplace_back();
  for (std::size_t i = 0; i < kSpokes; ++i) hub.precede(g.emplace_back());
  g.finalize_edges();
  EXPECT_LE(allocation_count() - before, 2u);
  EXPECT_EQ(hub.num_successors(), kSpokes);
}

// Without reserve the arena still amortizes: O(log n) slab acquisitions for
// n nodes + n edges, where the old per-node layout paid O(n) (one vector
// allocation per edge-bearing node plus one deque block per 4 nodes).
TEST(Alloc, UnreservedChainLogarithmicAllocations) {
  constexpr std::size_t kNodes = 100000;
  tf::Graph g;
  const std::size_t before = allocation_count();
  tf::Node* prev = &g.emplace_back();
  for (std::size_t i = 1; i < kNodes; ++i) {
    tf::Node* next = &g.emplace_back();
    prev->precede(*next);
    prev = next;
  }
  const std::size_t delta = allocation_count() - before;
  EXPECT_LE(delta, 64u) << "expected O(log n) slab/index growth, got " << delta;
}

// Topology recycling: run_n replays of a static graph re-arm in place -
// join counters, sources and successor spans are all reused, so the
// amortized heap cost per replay is O(1) (scheduler queues aside).
TEST(Alloc, RunNReplaysAmortizedConstant) {
  constexpr std::size_t kReplays = 1000;
  auto backend = tf::make_executor(1);
  tf::Executor executor(backend);
  tf::Taskflow taskflow;
  tf::Task prev = taskflow.emplace([] {});
  for (int i = 1; i < 64; ++i) {
    tf::Task next = taskflow.emplace([] {});
    prev.precede(next);
    prev = next;
  }
  executor.run(taskflow).get();  // warm up queues and the timer-free path
  const std::size_t before = allocation_count();
  executor.run_n(taskflow, kReplays).get();
  const std::size_t delta = allocation_count() - before;
  EXPECT_LE(delta, kReplays * 2)
      << "replays must not rebuild topology scratch per iteration";
}

// Dynamic replays: the spawned subflow's graph is recycled in place, so the
// 32 child nodes of every replay reuse the first replay's slab.
TEST(Alloc, SubflowReplaysReuseSubgraphStorage) {
  constexpr std::size_t kReplays = 200;
  auto backend = tf::make_executor(1);
  tf::Executor executor(backend);
  tf::Taskflow taskflow;
  std::atomic<int> runs{0};
  taskflow.emplace([&runs](tf::SubflowBuilder& sf) {
    for (int i = 0; i < 32; ++i) sf.emplace([&runs] { runs.fetch_add(1); });
  });
  executor.run(taskflow).get();  // first spawn allocates the subgraph box
  const std::size_t before = allocation_count();
  executor.run_n(taskflow, kReplays).get();
  const std::size_t delta = allocation_count() - before;
  EXPECT_EQ(runs.load(), 32 * (kReplays + 1));
  // 32 children/replay would be >= 6400 allocations in the old layout (one
  // Graph + one deque block per 4 nodes + edge vectors); recycled storage
  // keeps it to scheduler noise.
  EXPECT_LE(delta, kReplays * 4) << "subflow replays must recycle their graph";
}

// Async storms: retired boxes (graph + topology) come back from the pool;
// the remaining per-call allocations are the user-facing promise plumbing.
TEST(Alloc, AsyncSteadyStateReusesBoxes) {
  constexpr std::size_t kAsyncs = 1000;
  auto backend = tf::make_executor(1);
  tf::Executor executor(backend);
  // Warm-up fills the pool shards touched by this thread pair.
  for (int i = 0; i < 100; ++i) executor.async([] {}).get();
  const std::size_t before = allocation_count();
  for (std::size_t i = 0; i < kAsyncs; ++i) executor.async([] {}).get();
  const std::size_t per_async =
      (allocation_count() - before + kAsyncs - 1) / kAsyncs;
  // Measured: ~3 (promise shared state + future plumbing).  A fresh
  // AsyncRun box per call (graph slab + box + index) would add ~3-4 more.
  EXPECT_LE(per_async, 5u) << "async boxes must come from the pool";
}

}  // namespace
