// Admission-control suite (ISSUE 7, DESIGN.md §11): bounded submission with
// backpressure / reject / try_run, load shedding above the watermark,
// deficit-round-robin fairness with priority bands, and the per-taskflow
// circuit breaker - plus the interplay with the PR 2/4 error model (shed
// runs never execute, queued deadlines stay timeouts, fallback-degraded
// probes close the breaker) and the ShutdownError / OverloadError
// distinction.  Every wait is bounded so a bug fails instead of hanging.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace std::chrono_literals;

constexpr auto kDeadline = 120s;

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

// Scope guard opening a gate at test exit, so a failing ASSERT (early
// return) cannot leave a gate task spinning through the executor's
// destructor drain.  Declare AFTER the executor: it must open first.
struct GateOpener {
  explicit GateOpener(std::atomic<bool>& g) : gate(g) {}
  ~GateOpener() { gate.store(true); }
  std::atomic<bool>& gate;
};

// A task body that parks its run until the gate opens (cancel-aware so
// shutdown(abort) and cancelled runs still drain promptly).
void spin_until(const std::atomic<bool>& gate) {
  while (!gate.load() && !tf::this_task::is_cancelled()) {
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// Defaults: the zero-policy executor admits everything and meters nothing.
// ---------------------------------------------------------------------------

TEST(Admission, DefaultOptionsAdmitUnbounded) {
  tf::Executor executor(2);
  EXPECT_EQ(executor.options().max_pending_topologies, 0u);
  EXPECT_EQ(executor.options().max_pending_per_client, 0u);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  flow.emplace([&] { ran++; });
  std::vector<tf::ExecutionHandle> handles;
  for (int i = 0; i < 64; ++i) handles.push_back(executor.run(flow));
  for (auto& h : handles) {
    ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
    h.get();
  }
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(executor.num_admitted(), 0u);  // admission layer never engaged
  EXPECT_EQ(executor.num_rejected(), 0u);
  EXPECT_EQ(executor.num_shed(), 0u);
  std::ostringstream os;
  executor.dump_state(os);
  EXPECT_EQ(os.str().find("admission:"), std::string::npos);
}

TEST(Admission, TryRunOnDefaultExecutorAdmits) {
  tf::Executor executor(2);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  flow.emplace([&] { ran++; });
  auto handle = executor.try_run(flow);
  ASSERT_TRUE(handle.has_value());
  ASSERT_EQ(handle->wait_for(kDeadline), std::future_status::ready);
  handle->get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(Admission, TryRunEmptyGraphIsEngagedAndReady) {
  tf::ExecutorOptions opts;
  opts.max_pending_topologies = 4;
  tf::Executor executor(1, opts);
  tf::Taskflow empty;
  auto handle = executor.try_run(empty);
  ASSERT_TRUE(handle.has_value());
  EXPECT_EQ(handle->wait_for(0s), std::future_status::ready);
  EXPECT_NO_THROW(handle->get());
  EXPECT_EQ(executor.num_admitted(), 0u);  // nothing to meter
}

TEST(Admission, PriorityFieldIsInertWithoutAdmissionControl) {
  tf::Executor executor(2);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  flow.emplace([&] { ran++; });
  tf::RunPolicy policy;
  policy.priority = 2;
  policy.admission = tf::AdmissionPolicy::reject;
  executor.run(flow, policy).get();
  EXPECT_EQ(ran.load(), 1);
}

// ---------------------------------------------------------------------------
// Bounded admission: backpressure, timeout, reject, try_run.
// ---------------------------------------------------------------------------

TEST(Admission, PerClientBoundBlocksThenResumes) {
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 2;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  flow.emplace([&] {
    spin_until(gate);
    ran++;
  });

  auto h0 = executor.run(flow);  // in flight, parked on the gate
  auto h1 = executor.run(flow);  // queued: per-client bound reached
  std::atomic<bool> admitted{false};
  tf::ExecutionHandle h2;
  std::thread blocked([&] {
    h2 = executor.run(flow);  // backpressure: waits for capacity
    admitted = true;
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(admitted.load());  // still parked at the bound

  gate = true;  // h0 completes -> capacity frees -> the submitter wakes
  blocked.join();
  EXPECT_TRUE(admitted.load());
  for (auto* h : {&h0, &h1, &h2}) {
    ASSERT_EQ(h->wait_for(kDeadline), std::future_status::ready);
    EXPECT_NO_THROW(h->get());
  }
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(executor.num_admitted(), 3u);
  EXPECT_EQ(executor.num_rejected(), 0u);
}

TEST(Admission, GlobalBoundSpansClients) {
  tf::ExecutorOptions opts;
  opts.max_pending_topologies = 2;
  tf::Executor executor(2, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow a, b, c;
  a.emplace([&] { spin_until(gate); });
  b.emplace([&] { spin_until(gate); });
  std::atomic<int> c_ran{0};
  c.emplace([&] { c_ran++; });

  auto ha = executor.run(a);
  auto hb = executor.run(b);
  // The global budget is spent by two other clients: reject fails fast...
  tf::RunPolicy reject;
  reject.admission = tf::AdmissionPolicy::reject;
  EXPECT_THROW((void)executor.run(c, reject), tf::OverloadError);
  // ...and try_run reports no capacity without blocking or throwing.
  EXPECT_FALSE(executor.try_run(c).has_value());
  EXPECT_EQ(executor.num_rejected(), 2u);

  gate = true;
  ASSERT_EQ(ha.wait_for(kDeadline), std::future_status::ready);
  ASSERT_EQ(hb.wait_for(kDeadline), std::future_status::ready);
  executor.wait_for_all();
  auto hc = executor.try_run(c);  // capacity is back
  ASSERT_TRUE(hc.has_value());
  ASSERT_EQ(hc->wait_for(kDeadline), std::future_status::ready);
  EXPECT_EQ(c_ran.load(), 1);
  EXPECT_EQ(executor.num_admitted(), 3u);
}

TEST(Admission, AdmissionTimeoutExpiresIntoOverloadError) {
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow;
  flow.emplace([&] { spin_until(gate); });

  auto h0 = executor.run(flow);
  tf::RunPolicy policy;
  policy.admission_timeout = 50ms;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_THROW((void)executor.run(flow, policy), tf::OverloadError);
  const auto waited = std::chrono::steady_clock::now() - begin;
  EXPECT_GE(waited, 40ms);  // it genuinely waited before giving up
  EXPECT_EQ(executor.num_rejected(), 1u);
  gate = true;
  ASSERT_EQ(h0.wait_for(kDeadline), std::future_status::ready);
}

TEST(Admission, RunNIsOneAdmissionUnit) {
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  auto head = flow.emplace([&] { spin_until(gate); });
  head.precede(flow.emplace([&] { ran++; }));

  auto handle = executor.run_n(flow, 3);  // three repeats, ONE pending slot
  EXPECT_FALSE(executor.try_run(flow).has_value());  // the slot is taken
  gate = true;
  ASSERT_EQ(handle.wait_for(kDeadline), std::future_status::ready);
  handle.get();
  EXPECT_EQ(ran.load(), 3);
  auto again = executor.try_run(flow);
  ASSERT_TRUE(again.has_value());
  ASSERT_EQ(again->wait_for(kDeadline), std::future_status::ready);
}

// ---------------------------------------------------------------------------
// Shutdown vs overload: distinguishable rejections (satellite).
// ---------------------------------------------------------------------------

TEST(Admission, TryRunAfterShutdownIsEmptyNotThrowing) {
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 4;
  tf::Executor executor(1, opts);
  tf::Taskflow flow;
  flow.emplace([] {});
  executor.run(flow).get();
  executor.shutdown();
  EXPECT_FALSE(executor.try_run(flow).has_value());
  EXPECT_THROW((void)executor.run(flow), tf::ShutdownError);
  // Shutdown rejections are not overload: the reject counter stays clean.
  EXPECT_EQ(executor.num_rejected(), 0u);
}

TEST(Admission, TryRunAfterShutdownOnDefaultExecutorIsEmpty) {
  tf::Executor executor(1);
  tf::Taskflow flow;
  flow.emplace([] {});
  executor.shutdown();
  EXPECT_FALSE(executor.try_run(flow).has_value());
  EXPECT_THROW((void)executor.run(flow), tf::ShutdownError);
}

TEST(Admission, BlockedSubmitterUnblocksWithShutdownError) {
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow;
  flow.emplace([&] { spin_until(gate); });

  auto h0 = executor.run(flow);
  std::atomic<bool> got_shutdown_error{false};
  std::thread blocked([&] {
    try {
      (void)executor.run(flow);  // blocks at the per-client bound
    } catch (const tf::ShutdownError&) {
      got_shutdown_error = true;
    } catch (const tf::OverloadError&) {
    }
  });
  std::this_thread::sleep_for(50ms);
  executor.shutdown(tf::ShutdownMode::abort);  // cancels the gated run too
  blocked.join();
  EXPECT_TRUE(got_shutdown_error.load());
  EXPECT_EQ(h0.wait_for(0s), std::future_status::ready);
}

// ---------------------------------------------------------------------------
// Load shedding.
// ---------------------------------------------------------------------------

TEST(Admission, ShedRunNeverExecutesAndReportsOverloadError) {
  tf::ExecutorOptions opts;
  opts.shed_watermark = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  auto head = flow.emplace([&] { spin_until(gate); });
  head.precede(flow.emplace([&] { ran++; }));

  auto h0 = executor.run(flow);  // in flight (started: not sheddable)
  auto h1 = executor.run(flow);  // pending 2 > watermark 1: shed on the spot
  ASSERT_EQ(h1.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h1.get(), tf::OverloadError);
  EXPECT_TRUE(h1.is_cancelled());
  EXPECT_FALSE(h1.timed_out());
  EXPECT_EQ(executor.num_shed(), 1u);

  gate = true;
  ASSERT_EQ(h0.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(h0.get());
  executor.wait_for_all();
  EXPECT_EQ(ran.load(), 1);  // the shed run executed no task
  EXPECT_EQ(executor.num_topologies(), 0u);
}

TEST(Admission, SheddingEvictsLowestPriorityNewestFirst) {
  tf::ExecutorOptions opts;
  opts.shed_watermark = 3;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  auto head = flow.emplace([&] { spin_until(gate); });
  head.precede(flow.emplace([&] { ran++; }));

  tf::RunPolicy low, high;
  low.priority = 0;
  high.priority = 2;
  auto running = executor.run(flow, high);  // started
  auto victim = executor.run(flow, low);    // queued, band 0
  auto kept = executor.run(flow, high);     // queued, band 2, NEWER than victim
  auto pusher = executor.run(flow);         // pending 4 > 3: shed band 0 first
  ASSERT_EQ(victim.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(victim.get(), tf::OverloadError);
  EXPECT_EQ(executor.num_shed(), 1u);

  gate = true;
  for (auto* h : {&running, &kept, &pusher}) {
    ASSERT_EQ(h->wait_for(kDeadline), std::future_status::ready);
    EXPECT_NO_THROW(h->get());
  }
  EXPECT_EQ(ran.load(), 3);
}

TEST(Admission, DeadlineExpiryWhileQueuedIsTimeoutNotShed) {
  tf::ExecutorOptions opts;
  opts.shed_watermark = 10;  // admission active, but no shedding here
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  auto head = flow.emplace([&] { spin_until(gate); });
  head.precede(flow.emplace([&] { ran++; }));

  auto h0 = executor.run(flow);
  tf::RunPolicy policy;
  policy.timeout = 30ms;
  auto expired = executor.run(flow, policy);  // spends its budget queued
  std::this_thread::sleep_for(120ms);
  gate = true;
  ASSERT_EQ(expired.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(expired.get(), tf::TimeoutError);
  EXPECT_TRUE(expired.timed_out());
  EXPECT_EQ(executor.num_shed(), 0u);  // a queue-time timeout is not a shed
  ASSERT_EQ(h0.wait_for(kDeadline), std::future_status::ready);
  executor.wait_for_all();
}

// ---------------------------------------------------------------------------
// Fairness: deficit round-robin + priority ladder (needs a concurrency cap).
// ---------------------------------------------------------------------------

TEST(Admission, DeficitRoundRobinKeepsHotClientFromStarvingSmallOne) {
  tf::ExecutorOptions opts;
  opts.max_concurrent_topologies = 1;
  opts.fairness_quantum = 4;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);

  std::mutex order_mutex;
  std::string order;
  auto record = [&](char who) {
    std::scoped_lock lock(order_mutex);
    order.push_back(who);
  };

  // Hot client: a 64-node graph (cost 64), queue deep.  Its first run parks
  // on the gate so every submission below lands before anything dispatches.
  tf::Taskflow hot;
  auto hot_head = hot.emplace([&] {
    record('H');
    spin_until(gate);
  });
  for (int i = 0; i < 63; ++i) hot_head.precede(hot.emplace([] {}));

  // Small client: a 3-node graph (cost 3).
  tf::Taskflow small;
  auto small_head = small.emplace([&] { record('s'); });
  small_head.precede(small.emplace([] {}));
  small_head.precede(small.emplace([] {}));

  std::vector<tf::ExecutionHandle> handles;
  handles.push_back(executor.run(hot));  // takes the only slot, parks
  for (int i = 0; i < 3; ++i) handles.push_back(executor.run(hot));
  for (int i = 0; i < 6; ++i) handles.push_back(executor.run(small));
  gate = true;

  for (auto& h : handles) {
    ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready)
        << executor.stall_report();
    h.get();
  }
  // Deterministic with one worker and one slot: the parked hot run first;
  // then DRR (quantum 4 vs cost 64) lets every queued small run (cost 3)
  // through before the hot client accrues enough credit; plain FIFO would
  // have replayed H H H H first instead.
  EXPECT_EQ(order, "HssssssHHH");
  executor.wait_for_all();
}

TEST(Admission, PriorityLadderDispatchesHighBandFirst) {
  tf::ExecutorOptions opts;
  opts.max_concurrent_topologies = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);

  std::mutex order_mutex;
  std::string order;
  auto record = [&](char who) {
    std::scoped_lock lock(order_mutex);
    order.push_back(who);
  };

  tf::Taskflow parked, low_flow, normal_flow, high_flow;
  parked.emplace([&] { spin_until(gate); });
  low_flow.emplace([&] { record('l'); });
  normal_flow.emplace([&] { record('n'); });
  high_flow.emplace([&] { record('h'); });

  tf::RunPolicy low, high;
  low.priority = 0;
  high.priority = 2;
  auto hp = executor.run(parked);           // holds the single slot
  auto hl = executor.run(low_flow, low);    // ringed in band 0
  auto hn = executor.run(normal_flow);      // ringed in band 1
  auto hh = executor.run(high_flow, high);  // ringed in band 2
  gate = true;
  for (auto* h : {&hp, &hl, &hn, &hh}) {
    ASSERT_EQ(h->wait_for(kDeadline), std::future_status::ready)
        << executor.stall_report();
    h->get();
  }
  EXPECT_EQ(order, "hnl");  // strict bands: high, normal, low
}

TEST(Admission, CancelledQueuedRunStillDrainsCleanly) {
  tf::ExecutorOptions opts;
  opts.max_concurrent_topologies = 1;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow parked, victim_flow;
  parked.emplace([&] { spin_until(gate); });
  std::atomic<int> ran{0};
  victim_flow.emplace([&] { ran++; });

  auto hp = executor.run(parked);
  auto hv = executor.run(victim_flow);  // waiting for the slot
  hv.cancel();                          // cancelled before it ever started
  gate = true;
  ASSERT_EQ(hv.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(hv.get());  // a plain cancel drains without an exception
  EXPECT_EQ(ran.load(), 0);   // its task was skipped
  ASSERT_EQ(hp.wait_for(kDeadline), std::future_status::ready);
  executor.wait_for_all();
}

// ---------------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------------

TEST(Admission, BreakerOpensAfterConsecutiveFailuresAndRejects) {
  tf::ExecutorOptions opts;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown = 10s;  // long: stays open for the whole test
  tf::Executor executor(1, opts);
  tf::Taskflow failing;
  failing.emplace([] { throw Boom(); });
  tf::Taskflow healthy;
  std::atomic<int> healthy_ran{0};
  healthy.emplace([&] { healthy_ran++; });

  for (int i = 0; i < 2; ++i) {
    auto h = executor.run(failing);
    ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
    EXPECT_THROW(h.get(), Boom);
  }
  EXPECT_EQ(executor.num_breaker_trips(), 1u);
  EXPECT_THROW((void)executor.run(failing), tf::BreakerOpenError);
  // BreakerOpenError IS an OverloadError (one catch handles both)...
  EXPECT_THROW((void)executor.run(failing), tf::OverloadError);
  EXPECT_FALSE(executor.try_run(failing).has_value());
  EXPECT_EQ(executor.num_rejected(), 3u);
  // ...but the breaker is per taskflow: other clients are unaffected.
  executor.run(healthy).get();
  EXPECT_EQ(healthy_ran.load(), 1);
}

TEST(Admission, BreakerHalfOpenProbeSuccessCloses) {
  tf::ExecutorOptions opts;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown = 50ms;
  tf::Executor executor(1, opts);
  std::atomic<bool> fail{true};
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  flow.emplace([&] {
    ran++;
    if (fail.load()) throw Boom();
  });

  auto h = executor.run(flow);
  ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h.get(), Boom);
  EXPECT_THROW((void)executor.run(flow), tf::BreakerOpenError);  // open

  std::this_thread::sleep_for(100ms);  // cooldown elapses
  fail = false;
  executor.run(flow).get();  // the half-open probe: succeeds, closes
  executor.run(flow).get();  // closed again: plain admission
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(executor.num_breaker_trips(), 1u);
}

TEST(Admission, BreakerProbeFailureReopens) {
  tf::ExecutorOptions opts;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown = 50ms;
  tf::Executor executor(1, opts);
  tf::Taskflow failing;
  failing.emplace([] { throw Boom(); });

  auto h = executor.run(failing);
  ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h.get(), Boom);
  std::this_thread::sleep_for(100ms);
  auto probe = executor.run(failing);  // half-open probe, admitted
  ASSERT_EQ(probe.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(probe.get(), Boom);     // probe failed: re-open
  EXPECT_THROW((void)executor.run(failing), tf::BreakerOpenError);
  EXPECT_EQ(executor.num_breaker_trips(), 2u);
}

TEST(Admission, BreakerAdmitsOneProbeAtATime) {
  tf::ExecutorOptions opts;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown = 50ms;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  std::atomic<bool> fail{true};
  tf::Taskflow flow;
  flow.emplace([&] {
    spin_until(gate);
    if (fail.load()) throw Boom();
  });

  auto h = executor.run(flow);
  gate = true;
  ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h.get(), Boom);

  std::this_thread::sleep_for(100ms);
  gate = false;
  fail = false;
  auto probe = executor.run(flow);  // the probe parks on the gate
  // While the single probe is in flight, everything else still fails fast.
  EXPECT_THROW((void)executor.run(flow), tf::BreakerOpenError);
  EXPECT_FALSE(executor.try_run(flow).has_value());
  gate = true;
  ASSERT_EQ(probe.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(probe.get());  // success closes the breaker
  executor.run(flow).get();
}

TEST(Admission, FallbackDegradedProbeClosesBreaker) {
  // Satellite interplay: a breaker-open taskflow recovers through its PR 4
  // fallback - a fallback-degraded run completes cleanly and counts as the
  // probe success.
  tf::ExecutorOptions opts;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown = 50ms;
  tf::Executor executor(1, opts);
  std::atomic<bool> fallback_ok{false};
  std::atomic<int> degraded{0};
  tf::Taskflow flow;
  auto task = flow.emplace([] { throw Boom(); });
  task.fallback([&] {
    if (!fallback_ok.load()) throw Boom();  // a throwing fallback = failure
    degraded++;
  });

  auto h = executor.run(flow);
  ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h.get(), Boom);
  EXPECT_THROW((void)executor.run(flow), tf::BreakerOpenError);

  std::this_thread::sleep_for(100ms);
  fallback_ok = true;
  auto probe = executor.run(flow);
  ASSERT_EQ(probe.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(probe.get());  // degraded, but a success for the breaker
  executor.run(flow).get();      // breaker closed: admitted normally
  EXPECT_EQ(degraded.load(), 2);
}

// ---------------------------------------------------------------------------
// Observability: events, counters, dump_state.
// ---------------------------------------------------------------------------

class AdmissionObserver final : public tf::ExecutorObserverInterface {
 public:
  std::atomic<int> admits{0};
  std::atomic<int> rejects{0};
  std::atomic<int> sheds{0};
  void on_topology_admit() override { admits++; }
  void on_topology_reject() override { rejects++; }
  void on_topology_shed() override { sheds++; }
};

TEST(Admission, ObserverReceivesAdmitRejectShedEvents) {
  tf::ExecutorOptions opts;
  opts.max_pending_per_client = 2;
  opts.shed_watermark = 3;
  tf::Executor executor(1, opts);
  auto obs = std::make_shared<AdmissionObserver>();
  executor.set_observer(obs);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow flow, other;
  flow.emplace([&] { spin_until(gate); });
  other.emplace([] {});

  auto h0 = executor.run(flow);                      // admit #1 (started)
  auto h1 = executor.run(flow);                      // admit #2 (queued)
  EXPECT_FALSE(executor.try_run(flow).has_value());  // reject: client bound
  auto h2 = executor.run(other);                     // admit #3, pending 3
  auto h3 = executor.run(other);                     // admit #4: 4 > 3, shed
  ASSERT_EQ(h3.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(h3.get(), tf::OverloadError);
  gate = true;
  for (auto* h : {&h0, &h1, &h2}) {
    ASSERT_EQ(h->wait_for(kDeadline), std::future_status::ready);
    EXPECT_NO_THROW(h->get());
  }
  executor.wait_for_all();

  EXPECT_EQ(obs->admits.load(), 4);
  EXPECT_EQ(obs->rejects.load(), 1);
  EXPECT_EQ(obs->sheds.load(), 1);
  EXPECT_EQ(executor.num_admitted(), 4u);
  EXPECT_EQ(executor.num_rejected(), 1u);
  EXPECT_EQ(executor.num_shed(), 1u);
}

TEST(Admission, DumpStateReportsAdmissionDepthAndCounters) {
  tf::ExecutorOptions opts;
  opts.max_pending_topologies = 8;
  opts.max_concurrent_topologies = 1;
  opts.breaker_threshold = 3;
  tf::Executor executor(1, opts);
  std::atomic<bool> gate{false};
  GateOpener opener(gate);
  tf::Taskflow parked, waiting;
  parked.emplace([&] { spin_until(gate); });
  waiting.emplace([] {});

  auto h0 = executor.run(parked);
  auto h1 = executor.run(waiting);  // ringed, awaiting the slot
  std::string report = executor.stall_report();
  EXPECT_NE(report.find("admission: 2 pending/8"), std::string::npos) << report;
  EXPECT_NE(report.find("1 started/1"), std::string::npos) << report;
  EXPECT_NE(report.find("awaiting a slot"), std::string::npos) << report;
  EXPECT_NE(report.find("admitted 2"), std::string::npos) << report;
  EXPECT_NE(report.find("breaker trips 0"), std::string::npos) << report;
  gate = true;
  ASSERT_EQ(h0.wait_for(kDeadline), std::future_status::ready);
  ASSERT_EQ(h1.wait_for(kDeadline), std::future_status::ready);
  executor.wait_for_all();
}

// ---------------------------------------------------------------------------
// Concurrency: the bookkeeping identities hold under a multi-client storm.
// ---------------------------------------------------------------------------

TEST(Admission, ConcurrentClientsBookkeepingBalances) {
  tf::ExecutorOptions opts;
  opts.max_pending_topologies = 8;
  opts.max_pending_per_client = 4;
  opts.shed_watermark = 6;
  opts.max_concurrent_topologies = 2;
  opts.fairness_quantum = 8;
  // The flows are declared BEFORE the executor: its destructor drains every
  // in-flight run, so the graphs must outlive it.
  constexpr int kNumClientFlows = 4;
  std::vector<std::unique_ptr<tf::Taskflow>> flows;
  for (int c = 0; c < kNumClientFlows; ++c) {
    flows.push_back(std::make_unique<tf::Taskflow>());
    auto head = flows.back()->emplace([] { std::this_thread::yield(); });
    head.precede(flows.back()->emplace([] {}));
    head.precede(flows.back()->emplace([] {}));
  }
  tf::Executor executor(2, opts);

  constexpr int kClients = 4;
  constexpr int kRounds = 50;
  std::atomic<long> admitted{0}, rejected{0};
  std::vector<std::thread> clients;
  std::vector<std::vector<tf::ExecutionHandle>> handles(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& mine = *flows[c];
      for (int round = 0; round < kRounds; ++round) {
        try {
          switch (round % 3) {
            case 0: {
              handles[c].push_back(executor.run(mine));  // backpressure
              admitted++;
              break;
            }
            case 1: {
              if (auto h = executor.try_run(mine)) {
                handles[c].push_back(*h);
                admitted++;
              } else {
                rejected++;
              }
              break;
            }
            default: {
              tf::RunPolicy reject;
              reject.admission = tf::AdmissionPolicy::reject;
              reject.priority = round % 2;
              handles[c].push_back(executor.run(mine, reject));
              admitted++;
              break;
            }
          }
        } catch (const tf::OverloadError&) {
          rejected++;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  long ok = 0, shed = 0;
  for (auto& client_handles : handles) {
    for (auto& h : client_handles) {
      ASSERT_EQ(h.wait_for(kDeadline), std::future_status::ready)
          << executor.stall_report();
      try {
        h.get();
        ok++;
      } catch (const tf::OverloadError&) {
        shed++;
      }
    }
  }
  executor.wait_for_all();
  EXPECT_EQ(executor.num_admitted(), static_cast<std::size_t>(admitted.load()));
  EXPECT_EQ(executor.num_rejected(), static_cast<std::size_t>(rejected.load()));
  EXPECT_EQ(executor.num_shed(), static_cast<std::size_t>(shed));
  EXPECT_EQ(admitted.load(), ok + shed);  // every admitted run resolved
  EXPECT_EQ(executor.num_topologies(), 0u);
}

}  // namespace
