// Cooperative cancellation (ISSUE 2 tentpole): ExecutionHandle::cancel()
// flips a dispatched topology into draining mode - tasks not yet started
// skip their work, running tasks can poll tf::this_task::is_cancelled(),
// and the completion future becomes ready normally (no exception).
// Parameterized over both pluggable executors.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

namespace {

class CancelModel : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 4) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
};

TEST_P(CancelModel, CancelSkipsNotYetReleasedTasks) {
  tf::Taskflow tf(make());
  std::atomic<bool> gate{false};
  std::atomic<bool> root_started{false};
  std::atomic<int> executed{0};
  // The root gates every other task, so cancelling while it blocks
  // deterministically skips all 100 successors.
  auto root = tf.emplace([&] {
    root_started = true;
    while (!gate.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 100; ++i) {
    root.precede(tf.emplace([&] { executed++; }));
  }
  auto handle = tf.dispatch();
  while (!root_started.load()) std::this_thread::yield();
  handle.cancel();
  gate = true;
  handle.get();  // no exception: cancellation is not an error
  EXPECT_TRUE(handle.is_cancelled());
  EXPECT_EQ(handle.exception(), nullptr);
  EXPECT_EQ(executed.load(), 0);
  tf.wait_for_all();  // no rethrow for a cancelled topology
}

TEST_P(CancelModel, IsCancelledObservableInsideRunningTask) {
  tf::Taskflow tf(make(2));
  std::atomic<bool> started{false};
  std::atomic<bool> observed{false};
  tf.emplace([&] {
    started = true;
    // Cooperative loop: a long-running task exits early once cancelled.
    while (!tf::this_task::is_cancelled()) std::this_thread::yield();
    observed = true;
  });
  auto handle = tf.dispatch();
  while (!started.load()) std::this_thread::yield();
  handle.cancel();
  handle.get();
  EXPECT_TRUE(observed.load());
  tf.wait_for_all();
}

TEST_P(CancelModel, IsCancelledFalseInHealthyRunAndOutsideTasks) {
  EXPECT_FALSE(tf::this_task::is_cancelled());  // not inside any task
  tf::Taskflow tf(make(2));
  std::atomic<bool> inside{true};
  tf.emplace([&] { inside = tf::this_task::is_cancelled(); });
  tf.wait_for_all();
  EXPECT_FALSE(inside.load());
  EXPECT_FALSE(tf::this_task::is_cancelled());
}

TEST_P(CancelModel, CancelFrameworkRunAndReuse) {
  tf::Taskflow tf(make(2));
  tf::Framework fw;
  std::atomic<bool> gate{false};
  std::atomic<bool> root_started{false};
  std::atomic<int> executed{0};
  auto root = fw.emplace([&] {
    root_started = true;
    while (!gate.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 20; ++i) {
    root.precede(fw.emplace([&] { executed++; }));
  }
  auto handle = tf.run(fw);
  while (!root_started.load()) std::this_thread::yield();
  handle.cancel();
  gate = true;
  handle.get();
  EXPECT_EQ(executed.load(), 0);
  // A cancelled run does not poison the framework: the next run re-arms a
  // fresh topology with its own (clean) cancellation state.
  root_started = false;
  tf.run(fw).get();
  EXPECT_EQ(executed.load(), 20);
  tf.wait_for_all();
}

TEST_P(CancelModel, CancelOneTopologyDoesNotAffectAnother) {
  tf::Taskflow tf(make(2));
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  std::atomic<int> cancelled_ran{0};
  std::atomic<int> healthy_ran{0};
  auto root = tf.emplace([&] {
    started = true;
    while (!gate.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 10; ++i) root.precede(tf.emplace([&] { cancelled_ran++; }));
  auto first = tf.dispatch();
  for (int i = 0; i < 10; ++i) tf.emplace([&] { healthy_ran++; });
  auto second = tf.dispatch();
  while (!started.load()) std::this_thread::yield();
  first.cancel();
  gate = true;
  first.get();
  second.get();
  EXPECT_EQ(cancelled_ran.load(), 0);
  EXPECT_EQ(healthy_ran.load(), 10);
  EXPECT_FALSE(second.is_cancelled());
  tf.wait_for_all();
}

TEST_P(CancelModel, SelfCancellingTaskStopsRunN) {
  tf::Taskflow tf(make(2));
  tf::Framework fw;
  std::atomic<int> runs{0};
  std::atomic<tf::ExecutionHandle*> slot{nullptr};
  fw.emplace([&] {
    // The task of run #2 cancels its own run through the published handle -
    // the run loop must then stop the sequence.
    if (runs.fetch_add(1) == 1) {
      tf::ExecutionHandle* h = nullptr;
      while ((h = slot.load()) == nullptr) std::this_thread::yield();
      h->cancel();
    }
  });
  // run_n does not expose its per-run handle, so drive the same loop it
  // runs, publishing the live handle for the task to cancel through.
  for (std::size_t i = 0; i < 5; ++i) {
    tf::ExecutionHandle handle = tf.run(fw);
    slot = &handle;
    handle.get();
    slot = nullptr;
    if (handle.is_cancelled()) break;
  }
  EXPECT_EQ(runs.load(), 2);  // runs 3..5 skipped after the cancellation
  tf.wait_for_all();
}

TEST_P(CancelModel, CancelDuringSubflowStorm) {
  tf::Taskflow tf(make());
  std::atomic<int> spawned{0};
  for (int i = 0; i < 64; ++i) {
    tf.emplace([&](tf::SubflowBuilder& sf) {
      spawned++;
      for (int j = 0; j < 8; ++j) sf.emplace([&] { spawned++; });
    });
  }
  auto handle = tf.dispatch();
  while (spawned.load() < 16) std::this_thread::yield();  // mid-run
  handle.cancel();
  handle.get();  // must drain without deadlock, whatever was in flight
  EXPECT_TRUE(handle.is_cancelled());
  tf.wait_for_all();
}

INSTANTIATE_TEST_SUITE_P(Executors, CancelModel,
                         ::testing::Values("work_stealing", "simple"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(CancelHandle, DefaultHandleIsReadyAndCancelIsNoop) {
  tf::ExecutionHandle handle;
  handle.get();  // already complete
  handle.cancel();
  EXPECT_FALSE(handle.is_cancelled());
  EXPECT_EQ(handle.exception(), nullptr);
}

TEST(CancelHandle, EmptyDispatchReturnsReadyHandle) {
  tf::Taskflow tf(2);
  auto handle = tf.dispatch();
  EXPECT_EQ(handle.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  handle.cancel();  // no-op, no crash
  EXPECT_FALSE(handle.is_cancelled());
}

TEST(CancelHandle, SharedAcrossCopies) {
  tf::Taskflow tf(2);
  std::atomic<bool> gate{false};
  tf.emplace([&] {
    while (!gate.load() && !tf::this_task::is_cancelled()) std::this_thread::yield();
  });
  auto h1 = tf.dispatch();
  auto h2 = h1;  // copy shares the cancellation state
  h2.cancel();
  EXPECT_TRUE(h1.is_cancelled());
  h1.get();
  gate = true;
  tf.wait_for_all();
}

TEST(CancelHandle, OutlivesTopologyRelease) {
  tf::Taskflow tf(2);
  std::atomic<int> executed{0};
  tf.emplace([&] { executed++; });
  auto handle = tf.dispatch();
  tf.wait_for_all();  // releases the topology
  EXPECT_EQ(tf.num_topologies(), 0u);
  handle.get();  // the shared state keeps the handle valid
  handle.cancel();
  EXPECT_TRUE(handle.is_cancelled());  // flag settable, but the run is over
  EXPECT_EQ(executed.load(), 1);
}

TEST(CancelHandle, ConvertsToSharedFuture) {
  tf::Taskflow tf(2);
  std::atomic<int> executed{0};
  tf.emplace([&] { executed++; });
  std::shared_future<void> fut = tf.dispatch();  // paper-era call shape
  fut.get();
  EXPECT_EQ(executed.load(), 1);
  tf.wait_for_all();
}

}  // namespace
