// Locality layer tests (DESIGN.md §14): VictimOrder tier bucketing and EWMA
// reordering, the adaptive steal pass under a contended storm, slab-affine
// placement counters, worker pinning, and the diagnostic surface
// (dump_state / stats / attach-mid-run observer) with the locality knobs on.
#include "support/cpu_topology.hpp"
#include "taskflow/observer.hpp"
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace {

tf::WorkStealingOptions locality_on() {
  tf::WorkStealingOptions opt;
  opt.pin_workers = true;
  opt.adaptive_steal = true;
  opt.slab_affinity = true;
  return opt;
}

// A contended shape: a chain riding one worker's cache while each step
// sprays independent leaves into that worker's queue, so every other worker
// lives off steals.
void run_spray_chain(const std::shared_ptr<tf::ExecutorInterface>& exec,
                     int steps, int spray, std::atomic<long>& value) {
  tf::Taskflow tf(exec);
  auto sink = tf.emplace([] {});
  tf::Task prev;
  for (int s = 0; s < steps; ++s) {
    auto step =
        tf.emplace([&value] { value.fetch_add(1, std::memory_order_relaxed); });
    if (s > 0) prev.precede(step);
    for (int l = 0; l < spray; ++l) {
      auto leaf = tf.emplace(
          [&value] { value.fetch_add(1, std::memory_order_relaxed); });
      step.precede(leaf);
      leaf.precede(sink);
    }
    prev = step;
  }
  prev.precede(sink);
  tf.wait_for_all();
}

// --- VictimOrder -----------------------------------------------------------

TEST(VictimOrder, TierBucketsSkipOwnerAndPreserveTierMajorOrder) {
  tf::detail::VictimOrder order;
  // victims 0..4; owner is 2 (tier -1); tiers: 0->core, {1,3}->node, 4->remote
  order.assign({0, 1, -1, 1, 2}, 3);
  EXPECT_EQ(order.num_tiers(), 3);
  ASSERT_EQ(order.tier(0).size(), 1u);
  EXPECT_EQ(order.tier(0)[0], 0u);
  ASSERT_EQ(order.tier(1).size(), 2u);
  EXPECT_EQ(order.tier(1)[0], 1u);
  EXPECT_EQ(order.tier(1)[1], 3u);
  ASSERT_EQ(order.tier(2).size(), 1u);
  EXPECT_EQ(order.tier(2)[0], 4u);
}

TEST(VictimOrder, SuccessBubblesVictimUpWithinItsTier) {
  tf::detail::VictimOrder order;
  order.assign({0, 0, 0, -1}, 1);  // three same-tier victims, owner 3
  ASSERT_EQ(order.tier(0).size(), 3u);
  EXPECT_EQ(order.tier(0)[0], 0u);

  // Repeated success on victim 2 must walk it to the front, one slot per
  // report, without ever leaving the tier.
  for (int i = 0; i < 8; ++i) order.report(2, true, 0.25);
  EXPECT_EQ(order.tier(0)[0], 2u);
  EXPECT_GT(order.score(2), order.score(0));

  // Failures decay the score and bubble it back down.
  for (int i = 0; i < 64; ++i) order.report(2, false, 0.25);
  EXPECT_LT(order.score(2), 0.01f);
  order.report(0, true, 0.25);
  order.report(0, true, 0.25);
  EXPECT_EQ(order.tier(0)[0], 0u);
}

TEST(VictimOrder, TopVictimTracksHighestScore) {
  tf::detail::VictimOrder order;
  EXPECT_EQ(order.top_victim(), tf::detail::VictimOrder::kNone);
  order.assign({0, 0, -1}, 1);
  EXPECT_EQ(order.top_victim(), tf::detail::VictimOrder::kNone);  // all zero
  order.report(1, true, 0.5);
  EXPECT_EQ(order.top_victim(), 1u);
}

// --- Adaptive steal pass ---------------------------------------------------

TEST(Locality, AdaptiveStealStormCompletesAndCountersCohere) {
  tf::WorkStealingOptions opt;
  opt.adaptive_steal = true;  // adaptive alone: unpinned, single tier
  auto executor = tf::make_executor(4, opt);
  std::atomic<long> value{0};
  constexpr int kSteps = 64;
  constexpr int kSpray = 8;
  constexpr int kRounds = 20;
  for (int r = 0; r < kRounds; ++r) {
    run_spray_chain(executor, kSteps, kSpray, value);
  }
  EXPECT_EQ(value.load(), static_cast<long>(kRounds) * kSteps * (kSpray + 1));

  // Every successful steal of the adaptive pass lands in exactly one tier
  // bucket, and each one was an attempt first.
  auto* ws = dynamic_cast<tf::WorkStealingExecutor*>(executor.get());
  ASSERT_NE(ws, nullptr);
  const auto by_tier = ws->num_tier_steals(0) + ws->num_tier_steals(1) +
                       ws->num_tier_steals(2);
  EXPECT_EQ(by_tier, executor->num_steals());
  EXPECT_GE(ws->num_steal_attempts(), executor->num_steals());

  // Unpinned workers know no CPU distance: everything sits in the same-node
  // tier, so no steal may ever be classified same-core or remote.
  EXPECT_EQ(ws->num_tier_steals(0), 0u);
  EXPECT_EQ(ws->num_tier_steals(2), 0u);

  const auto s = executor->stats();
  EXPECT_EQ(s.steals_same_node, ws->num_tier_steals(1));
  EXPECT_EQ(s.steals_central, ws->num_tier_steals(3));
}

// Give-up parking (adaptive_park_patience) must never cost liveness: with
// the most aggressive patience, workers park at the first widest-tier dry
// sweep, and every graph - serial chains that starve thieves completely,
// then concurrent sprays that re-wake them - must still complete.  The
// assertion is completion itself (a lost wakeup would hang the test).
TEST(Locality, GiveUpParkingKeepsStarvedPoolLive) {
  auto opt = locality_on();
  opt.adaptive_park_patience = 1;
  auto executor = tf::make_executor(8, opt);
  std::atomic<long> value{0};
  long expected = 0;
  for (int round = 0; round < 50; ++round) {
    // Pure chain: advances through one worker's cache, so the other seven
    // workers sweep dry and take the give-up path to park.
    tf::Taskflow tf(executor);
    tf::Task prev = tf.emplace([&value] { value.fetch_add(1); });
    for (int i = 0; i < 64; ++i) {
      auto t = tf.emplace([&value] { value.fetch_add(1); });
      prev.precede(t);
      prev = t;
    }
    tf.wait_for_all();
    expected += 65;
    run_spray_chain(executor, 16, 4, value);
    expected += 16 * 5;
  }
  EXPECT_EQ(value.load(), expected);
}

TEST(Locality, FullLocalityStormMatchesFlatResults) {
  // The same storm under every knob at once vs the flat scheduler: results
  // must be identical (the locality layer may only change *where* tasks run).
  auto flat = tf::make_executor(4);
  auto local = tf::make_executor(4, locality_on());
  std::atomic<long> a{0};
  std::atomic<long> b{0};
  for (int r = 0; r < 10; ++r) {
    run_spray_chain(flat, 32, 4, a);
    run_spray_chain(local, 32, 4, b);
  }
  EXPECT_EQ(a.load(), b.load());
}

TEST(Locality, ZeroPolicyExecutorHasNoLocalityCounters) {
  auto executor = tf::make_executor(2);
  std::atomic<long> value{0};
  run_spray_chain(executor, 32, 4, value);
  EXPECT_EQ(executor->num_steal_attempts(), 0u);
  EXPECT_EQ(executor->num_slab_placements(), 0u);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(executor->num_tier_steals(t), 0u);
  const auto s = executor->stats();
  EXPECT_EQ(s.slab_placements, 0u);
}

// --- Slab-affine placement -------------------------------------------------

TEST(Locality, SlabAffinityRoutesSameSlabSuccessorsLocally) {
  tf::WorkStealingOptions opt;
  opt.slab_affinity = true;
  auto executor = tf::make_executor(2, opt);
  std::atomic<long> value{0};
  // Wide fan-outs: the source and most of its successors are allocated from
  // the same arena slab, so the batched release must keep some of them on
  // the releasing worker.
  for (int r = 0; r < 5; ++r) {
    tf::Taskflow tf(executor);
    auto source = tf.emplace([] {});
    auto sink = tf.emplace([] {});
    for (int i = 0; i < 128; ++i) {
      auto mid = tf.emplace(
          [&value] { value.fetch_add(1, std::memory_order_relaxed); });
      source.precede(mid);
      mid.precede(sink);
    }
    tf.wait_for_all();
  }
  EXPECT_EQ(value.load(), 5 * 128);
  EXPECT_GT(executor->num_slab_placements(), 0u);
  EXPECT_EQ(executor->stats().slab_placements,
            executor->num_slab_placements());
}

TEST(Locality, SlabCookieSharedWithinOneSmallGraph) {
  // Two nodes emplaced back to back come from the same arena slab; the
  // cookie is the executor-side affinity key, so it must agree.
  tf::Taskflow tf(tf::make_executor(1));
  auto a = tf.emplace([] {});
  auto b = tf.emplace([] {});
  (void)a;
  (void)b;
  auto& graph = tf.graph();
  ASSERT_GE(graph.size(), 2u);
  EXPECT_NE(graph.node_at(0).slab_cookie(), 0u);
  EXPECT_EQ(graph.node_at(0).slab_cookie(), graph.node_at(1).slab_cookie());
}

// --- Pinning ---------------------------------------------------------------

#if defined(__linux__)
TEST(Locality, PinnedWorkersRunOnSingleCpu) {
  // Pinning may legitimately fail in restricted sandboxes; probe from the
  // test thread first and skip rather than fail there.
  const auto mask_before = support::current_affinity();
  if (mask_before.empty() || !support::pin_current_thread(mask_before.front())) {
    GTEST_SKIP() << "cannot set affinity in this environment";
  }
  {
    cpu_set_t set;
    CPU_ZERO(&set);
    for (const int c : mask_before) CPU_SET(static_cast<unsigned>(c), &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }

  tf::WorkStealingOptions opt;
  opt.pin_workers = true;
  auto executor = tf::make_executor(2, opt);
  EXPECT_GE(executor->topology().num_cpus(), 1u);

  std::atomic<int> singleton{0};
  std::atomic<int> total{0};
  tf::Taskflow tf(executor);
  for (int i = 0; i < 16; ++i) {
    tf.emplace([&] {
      total.fetch_add(1);
      if (support::current_affinity().size() == 1) singleton.fetch_add(1);
    });
  }
  tf.wait_for_all();
  EXPECT_EQ(total.load(), 16);
  EXPECT_EQ(singleton.load(), 16) << "every worker must be pinned to one CPU";
}
#endif

// --- Diagnostics -----------------------------------------------------------

TEST(Locality, DumpStateShowsPerWorkerLocalityLines) {
  auto executor = tf::make_executor(2, locality_on());
  std::atomic<long> value{0};
  run_spray_chain(executor, 64, 8, value);

  std::ostringstream os;
  executor->dump_state(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("steals[core/node/remote/central]="), std::string::npos);
  EXPECT_NE(s.find("cpu="), std::string::npos);
  EXPECT_NE(s.find("slab_placements="), std::string::npos);

  std::ostringstream flat_os;
  tf::make_executor(2)->dump_state(flat_os);
  EXPECT_EQ(flat_os.str().find("steals[core"), std::string::npos)
      << "zero-policy dump_state must stay unchanged";
}

class CountingObserver final : public tf::ExecutorObserverInterface {
 public:
  std::atomic<int> entries{0};
  std::atomic<int> exits{0};
  void on_entry(std::size_t, const tf::Node&) override { entries++; }
  void on_exit(std::size_t, const tf::Node&) override { exits++; }
};

TEST(Locality, ObserverAttachedBetweenRunsSeesLocalityTraffic) {
  // The observer contract (attach while quiescent) composes with the
  // locality layer: steal-heavy execution must produce exactly one
  // entry/exit pair per task, and dump_state stays callable mid-run.
  auto executor = tf::make_executor(4, locality_on());
  std::atomic<long> value{0};
  run_spray_chain(executor, 32, 4, value);  // un-observed warm-up round

  auto obs = std::make_shared<CountingObserver>();
  executor->set_observer(obs);

  std::atomic<bool> stop{false};
  std::thread prober([&] {
    // Hammer the diagnostic surface from outside while the storm runs: it
    // reads only atomics, so it must never crash or deadlock.
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      executor->dump_state(os);
      (void)executor->stats();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  constexpr int kSteps = 64;
  constexpr int kSpray = 4;
  run_spray_chain(executor, kSteps, kSpray, value);
  stop.store(true);
  prober.join();

  const int observed = kSteps * (kSpray + 1) + 1;  // chain + leaves + sink
  EXPECT_EQ(obs->entries.load(), observed);
  EXPECT_EQ(obs->exits.load(), observed);
}

}  // namespace
