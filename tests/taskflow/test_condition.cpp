// In-graph control flow via condition tasks (ISSUE 8 tentpole): an
// int-returning callable selects which successor fires, edges out of a
// condition are weak (no join contribution), and a back-edge through a
// condition forms a legal in-graph loop that re-arms visited nodes without
// re-arming the topology.  The suite also pins the composition with the
// error model (out-of-range branches, retry/fallback on a condition) and
// with cancellation/deadline draining mid-loop.
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

using namespace std::chrono_literals;

namespace {

constexpr auto kDeadline = std::chrono::seconds(30);

class Condition : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<tf::ExecutorInterface> make(std::size_t n = 4) const {
    if (std::string(GetParam()) == "simple") {
      return std::make_shared<tf::SimpleExecutor>(n);
    }
    return tf::make_executor(n);
  }
};

TEST_P(Condition, EmplaceDetectsIntReturningCallable) {
  tf::Taskflow flow;
  auto cond = flow.emplace([] { return 0; });
  auto stat = flow.emplace([] {});
  EXPECT_TRUE(cond.is_condition());
  EXPECT_FALSE(stat.is_condition());
  EXPECT_FALSE(cond.is_module());
  EXPECT_EQ(cond.last_branch(), -1);  // never executed
}

TEST_P(Condition, PlaceholderAssignedConditionWorkFlipsEdgeStrength) {
  // Edges wired before the callable exists must be re-classified when the
  // placeholder later becomes a condition (and vice versa).
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<int> a_runs{0};
  std::atomic<int> b_runs{0};
  auto entry = flow.emplace([] {});
  auto chooser = flow.placeholder();
  auto a = flow.emplace([&] { a_runs++; });
  auto b = flow.emplace([&] { b_runs++; });
  entry.precede(chooser);
  chooser.precede(a);
  chooser.precede(b);
  chooser.work([] { return 0; });  // kind flip after the edges exist
  EXPECT_TRUE(chooser.is_condition());
  tf.run(flow).get();
  EXPECT_EQ(a_runs.load(), 1);
  EXPECT_EQ(b_runs.load(), 0);  // weak edge: not fired by a join
}

TEST_P(Condition, SelectsExactlyOneSuccessor) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<int> taken_a{0};
  std::atomic<int> taken_b{0};
  auto cond = flow.emplace([] { return 1; });
  cond.precede(flow.emplace([&] { taken_a++; }));
  cond.precede(flow.emplace([&] { taken_b++; }));
  tf.run(flow).get();
  EXPECT_EQ(taken_a.load(), 0);
  EXPECT_EQ(taken_b.load(), 1);
  EXPECT_EQ(cond.last_branch(), 1);
}

TEST_P(Condition, LoopIteratesUntilConditionBreaks) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  int laps = 0;
  auto init = flow.emplace([&] { laps = 0; }).name("init");
  auto body = flow.emplace([&] { ++laps; }).name("body");
  auto cond = flow.emplace([&] { return laps < 100 ? 0 : 1; }).name("cond");
  auto done = flow.emplace([&] { laps = -laps; }).name("done");
  init.precede(body);
  body.precede(cond);
  cond.precede(body);  // branch 0: loop back
  cond.precede(done);  // branch 1: exit
  tf.run(flow).get();
  EXPECT_EQ(laps, -100);
  EXPECT_EQ(cond.last_branch(), 1);
}

TEST_P(Condition, LoopBodyWithInternalFanOutReArmsJoins) {
  // The loop body is a diamond: the join node's counter must be restored
  // after every lap, otherwise lap 2 would fire it early (or never).
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<int> joins{0};
  int laps = 0;
  auto start = flow.emplace([] {}).name("start");
  auto fork = flow.emplace([] {}).name("fork");
  auto left = flow.emplace([] {}).name("left");
  auto right = flow.emplace([] {}).name("right");
  auto join = flow.emplace([&] { joins++; }).name("join");
  auto cond = flow.emplace([&] { return ++laps < 10 ? 0 : 1; }).name("cond");
  auto exit = flow.emplace([] {}).name("exit");
  start.precede(fork);
  fork.precede(left);
  fork.precede(right);
  left.precede(join);
  right.precede(join);
  join.precede(cond);
  cond.precede(fork);
  cond.precede(exit);
  tf.run(flow).get();
  EXPECT_EQ(joins.load(), 10);
}

TEST_P(Condition, NestedLoopsConverge) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  int outer = 0;
  int inner = 0;
  int total_inner = 0;
  auto outer_init = flow.emplace([&] { outer = 0; });
  auto inner_init = flow.emplace([&] { inner = 0; });
  auto inner_body = flow.emplace([&] {
    ++inner;
    ++total_inner;
  });
  auto inner_cond = flow.emplace([&] { return inner < 5 ? 0 : 1; });
  auto outer_cond = flow.emplace([&] { return ++outer < 4 ? 0 : 1; });
  auto done = flow.emplace([] {});
  outer_init.precede(inner_init);
  inner_init.precede(inner_body);
  inner_body.precede(inner_cond);
  inner_cond.precede(inner_body);  // 0: inner lap
  inner_cond.precede(outer_cond);  // 1: inner done
  outer_cond.precede(inner_init);  // 0: outer lap
  outer_cond.precede(done);        // 1: exit
  tf.run(flow).get();
  EXPECT_EQ(total_inner, 20);  // 4 outer laps x 5 inner laps
}

TEST_P(Condition, MixedStrongAndWeakPredecessorsFireOnEither) {
  // tf2 semantics: a node with both strong and weak predecessors becomes
  // ready when its strong join completes OR when a condition selects it.
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<int> runs{0};
  auto strong_pred = flow.emplace([] {}).name("strong");
  auto cond = flow.emplace([] { return 0; }).name("cond");
  auto target = flow.emplace([&] { runs++; }).name("target");
  strong_pred.precede(target);
  cond.precede(target);
  strong_pred.precede(cond);
  tf.run(flow).get();
  // The strong join fires it once; the condition selection fires it again.
  EXPECT_EQ(runs.load(), 2);
}

TEST_P(Condition, RunNReArmsTheLoopEachRun) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  int laps = 0;
  std::atomic<int> total{0};
  auto init = flow.emplace([&] { laps = 0; });
  auto body = flow.emplace([&] {
    ++laps;
    total++;
  });
  auto cond = flow.emplace([&] { return laps < 7 ? 0 : 1; });
  auto tail = flow.emplace([] {});
  init.precede(body);
  body.precede(cond);
  cond.precede(body);
  cond.precede(tail);
  tf.run_n(flow, 3);
  EXPECT_EQ(total.load(), 21);
}

// ---------------------------------------------------------------------------
// Cycle legality: back-edges through a condition are loops; pure-static
// cycles and sourceless graphs stay errors.
// ---------------------------------------------------------------------------

TEST_P(Condition, PureStaticCycleStillThrows) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  auto a = flow.emplace([] {}).name("alpha");
  auto b = flow.emplace([] {}).name("beta");
  a.precede(b);
  b.precede(a);
  try {
    tf.run(flow);
    FAIL() << "expected CycleError";
  } catch (const tf::CycleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
  }
}

TEST_P(Condition, StaticCycleBehindAConditionIsStillNamed) {
  // The condition only legalizes its own out-edges: a strong cycle reached
  // through a condition branch remains a deadlock and must be reported.
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  auto entry = flow.emplace([] { return 0; }).name("entry");
  auto a = flow.emplace([] {}).name("alpha");
  auto b = flow.emplace([] {}).name("beta");
  entry.precede(a);
  a.precede(b);
  b.precede(a);
  EXPECT_THROW(tf.run(flow), tf::CycleError);
}

TEST_P(Condition, SourcelessConditionLoopIsRejected) {
  // Legal back-edge, but no task has zero total dependents: nothing could
  // ever start, so dispatch must refuse rather than hang.
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  auto body = flow.emplace([] {});
  auto cond = flow.emplace([] { return 0; });
  body.precede(cond);
  cond.precede(body);
  try {
    tf.run(flow);
    FAIL() << "expected CycleError";
  } catch (const tf::CycleError& e) {
    EXPECT_NE(std::string(e.what()).find("no source task"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Composition with the error model (ISSUE 2/4): out-of-range branches are
// captured errors; retry/fallback apply to conditions like any other task;
// cancellation and deadlines break loops between iterations.
// ---------------------------------------------------------------------------

TEST_P(Condition, OutOfRangeBranchSurfacesAsCapturedError) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<int> ran{0};
  auto cond = flow.emplace([] { return 7; }).name("chooser");
  cond.precede(flow.emplace([&] { ran++; }));
  cond.precede(flow.emplace([&] { ran++; }));
  auto handle = tf.run(flow);
  try {
    handle.get();
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chooser"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;
    EXPECT_NE(what.find("2"), std::string::npos) << what;
  }
  EXPECT_TRUE(handle.is_cancelled());  // error drains the topology
  EXPECT_EQ(ran.load(), 0);            // no branch fired
  EXPECT_EQ(cond.last_branch(), -1);   // selection never happened
}

TEST_P(Condition, NegativeBranchIsAlsoOutOfRange) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  auto cond = flow.emplace([] { return -2; });
  cond.precede(flow.emplace([] {}));
  EXPECT_THROW(tf.run(flow).get(), std::out_of_range);
}

TEST_P(Condition, RetryRecoversAThrowingCondition) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<int> attempts{0};
  std::atomic<int> exits{0};
  auto cond = flow.emplace([&]() -> int {
    if (attempts.fetch_add(1) < 2) throw std::runtime_error("transient");
    return 1;
  });
  cond.retry(5);
  cond.precede(flow.emplace([] {}));
  cond.precede(flow.emplace([&] { exits++; }));
  tf.run(flow).get();
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(exits.load(), 1);
  EXPECT_EQ(cond.last_branch(), 1);
}

TEST_P(Condition, FallbackSuccessSelectsNoBranchAndEndsTheLoop) {
  // When a condition's fallback absorbs the failure, no branch index was
  // produced: the run succeeds and the loop simply terminates.
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<int> body_runs{0};
  std::atomic<bool> fell_back{false};
  std::atomic<bool> exited{false};
  auto init = flow.emplace([] {});
  auto body = flow.emplace([&] { body_runs++; });
  auto cond = flow.emplace([&]() -> int {
    if (body_runs.load() < 3) return 0;
    throw std::runtime_error("boom");
  });
  cond.fallback([&] { fell_back = true; });
  init.precede(body);
  body.precede(cond);
  cond.precede(body);
  cond.precede(flow.emplace([&] { exited = true; }));
  auto handle = tf.run(flow);
  EXPECT_NO_THROW(handle.get());
  EXPECT_EQ(body_runs.load(), 3);
  EXPECT_TRUE(fell_back.load());
  EXPECT_FALSE(exited.load());  // neither branch was selected
}

TEST_P(Condition, CancellationBreaksTheLoopBetweenIterations) {
  tf::Taskflow tf(make());
  tf::Taskflow flow;
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<long> laps{0};
  auto init = flow.emplace([] {});
  auto body = flow.emplace([&] {
    started = true;
    // The first lap parks until the test has cancelled; later laps (if the
    // drain is slow to take hold) fly through without blocking.
    while (!release.load() && !tf::this_task::is_cancelled()) {
      std::this_thread::yield();
    }
    laps++;
  });
  auto cond = flow.emplace([] { return 0; });  // loop forever
  init.precede(body);
  body.precede(cond);
  cond.precede(body);
  auto handle = tf.run(flow);
  while (!started.load()) std::this_thread::yield();
  handle.cancel();
  release = true;
  ASSERT_EQ(handle.wait_for(kDeadline), std::future_status::ready);
  EXPECT_NO_THROW(handle.get());
  EXPECT_TRUE(handle.is_cancelled());
  // Draining skips the condition's work, so no branch is selected and the
  // otherwise-infinite loop unwinds after at most a couple of laps.
  EXPECT_LE(laps.load(), 2);
}

TEST_P(Condition, DeadlineExpiryBreaksTheLoop) {
  tf::Executor executor(2);
  tf::Taskflow flow;
  std::atomic<long> laps{0};
  auto init = flow.emplace([] {});
  auto body = flow.emplace([&] {
    laps++;
    std::this_thread::sleep_for(1ms);
  });
  auto cond = flow.emplace([] { return 0; });  // loop forever
  init.precede(body);
  body.precede(cond);
  cond.precede(body);
  tf::RunPolicy policy;
  policy.timeout = 50ms;
  auto handle = executor.run(flow, policy);
  ASSERT_EQ(handle.wait_for(kDeadline), std::future_status::ready);
  EXPECT_THROW(handle.get(), tf::TimeoutError);
  EXPECT_TRUE(handle.timed_out());
  executor.wait_for_all();
  EXPECT_GE(laps.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Backends, Condition,
                         ::testing::Values("work_stealing", "simple"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
