// Executor semantics (paper §III-E): work-stealing correctness under load,
// pluggability, sharing across taskflows, and Algorithm-1 heuristics.
#include "taskflow/executor.hpp"
#include "taskflow/taskflow.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace {

class ExecutorStress : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorStress, ManyIndependentTasks) {
  const int workers = GetParam();
  tf::Taskflow tf(static_cast<std::size_t>(workers));
  std::atomic<long> counter{0};
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) tf.emplace([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), n);
}

TEST_P(ExecutorStress, DeepLinearChain) {
  // Exercises the per-worker cache (speculative chain execution): a strictly
  // linear dependency graph must still execute in order.
  const int workers = GetParam();
  tf::Taskflow tf(static_cast<std::size_t>(workers));
  constexpr int n = 10000;
  int sequential_value = 0;  // written strictly in dependency order
  bool ok = true;
  std::vector<tf::Task> chain;
  chain.reserve(n);
  for (int i = 0; i < n; ++i) {
    chain.push_back(tf.emplace([&, i] {
      if (sequential_value != i) ok = false;
      sequential_value = i + 1;
    }));
  }
  tf.linearize(chain);
  tf.wait_for_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(sequential_value, n);
}

TEST_P(ExecutorStress, WideFanOutFanIn) {
  const int workers = GetParam();
  tf::Taskflow tf(static_cast<std::size_t>(workers));
  std::atomic<int> mids{0};
  std::atomic<bool> fanin_saw_all{false};
  auto src = tf.emplace([] {});
  auto sink = tf.emplace([&] { fanin_saw_all = (mids.load() == 5000); });
  for (int i = 0; i < 5000; ++i) {
    auto mid = tf.emplace([&] { mids.fetch_add(1, std::memory_order_relaxed); });
    src.precede(mid);
    mid.precede(sink);
  }
  tf.wait_for_all();
  EXPECT_TRUE(fanin_saw_all.load());
}

TEST_P(ExecutorStress, RandomDagRespectsAllEdges) {
  // Build a random DAG and verify every edge ordering at runtime.
  const int workers = GetParam();
  constexpr int n = 2000;
  tf::Taskflow tf(static_cast<std::size_t>(workers));
  std::vector<std::atomic<int>> stamp(n);
  for (auto& s : stamp) s.store(-1);
  std::atomic<int> clock{0};

  std::vector<tf::Task> tasks;
  tasks.reserve(n);
  for (int i = 0; i < n; ++i) {
    tasks.push_back(tf.emplace([&stamp, &clock, i] {
      stamp[static_cast<std::size_t>(i)].store(clock.fetch_add(1));
    }));
  }
  support::Xoshiro256 rng(321);
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v) {
    const int degree = static_cast<int>(rng.below(4));
    for (int e = 0; e < degree; ++e) {
      const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(v)));
      tasks[static_cast<std::size_t>(u)].precede(tasks[static_cast<std::size_t>(v)]);
      edges.emplace_back(u, v);
    }
  }
  tf.wait_for_all();
  for (auto [u, v] : edges) {
    EXPECT_LT(stamp[static_cast<std::size_t>(u)].load(),
              stamp[static_cast<std::size_t>(v)].load());
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ExecutorStress, ::testing::Values(1, 2, 4, 8));

TEST(Executor, SharedAcrossTaskflows) {
  // Paper §III-E: sharing an executor among taskflow objects avoids thread
  // over-subscription; all taskflows must still complete correctly.
  auto executor = tf::make_executor(4);
  std::atomic<int> counter{0};
  {
    std::vector<std::unique_ptr<tf::Taskflow>> flows;
    for (int f = 0; f < 8; ++f) {
      flows.push_back(std::make_unique<tf::Taskflow>(executor));
      for (int i = 0; i < 500; ++i) flows.back()->emplace([&] { counter++; });
      flows.back()->silent_dispatch();
    }
    for (auto& f : flows) f->wait_for_all();
  }
  EXPECT_EQ(counter.load(), 8 * 500);
  EXPECT_EQ(executor->num_workers(), 4u);
}

TEST(Executor, SimpleExecutorRunsGraphsCorrectly) {
  auto executor = std::make_shared<tf::SimpleExecutor>(4);
  tf::Taskflow tf(executor);
  std::atomic<int> order_errors{0};
  std::atomic<int> stage{0};
  auto A = tf.emplace([&] {
    if (stage.exchange(1) != 0) order_errors++;
  });
  auto B = tf.emplace([&] {
    if (stage.exchange(2) != 1) order_errors++;
  });
  auto C = tf.emplace([&] {
    if (stage.exchange(3) != 2) order_errors++;
  });
  A.precede(B);
  B.precede(C);
  tf.wait_for_all();
  EXPECT_EQ(order_errors.load(), 0);
  EXPECT_EQ(stage.load(), 3);
}

TEST(Executor, SimpleExecutorSubflows) {
  auto executor = std::make_shared<tf::SimpleExecutor>(2);
  tf::Taskflow tf(executor);
  std::atomic<int> counter{0};
  auto B = tf.emplace([&](tf::SubflowBuilder& sf) {
    for (int i = 0; i < 50; ++i) sf.emplace([&] { counter++; });
  });
  auto D = tf.emplace([&] { EXPECT_EQ(counter.load(), 50); });
  B.precede(D);
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 50);
}

TEST(Executor, CacheDisabledStillCorrect) {
  tf::WorkStealingOptions opt;
  opt.enable_worker_cache = false;
  auto executor = tf::make_executor(4, opt);
  tf::Taskflow tf(executor);
  std::atomic<int> counter{0};
  std::vector<tf::Task> chain;
  for (int i = 0; i < 1000; ++i) chain.push_back(tf.emplace([&] { counter++; }));
  tf.linearize(chain);
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 1000);
  EXPECT_EQ(executor->num_cache_hits(), 0u);
}

TEST(Executor, CacheEnabledReportsHitsOnLinearChain) {
  auto executor = tf::make_executor(2);
  tf::Taskflow tf(executor);
  std::vector<tf::Task> chain;
  for (int i = 0; i < 1000; ++i) chain.push_back(tf.emplace([] {}));
  tf.linearize(chain);
  tf.wait_for_all();
  // Nearly every link of the chain should have gone through the cache.
  EXPECT_GT(executor->num_cache_hits(), 500u);
}

TEST(Executor, ZeroBalanceProbabilityStillCompletes) {
  tf::WorkStealingOptions opt;
  opt.balance_wake_probability = 0.0;
  auto executor = tf::make_executor(4, opt);
  tf::Taskflow tf(executor);
  std::atomic<int> counter{0};
  for (int i = 0; i < 5000; ++i) tf.emplace([&] { counter++; });
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 5000);
}

TEST(Executor, IdlersParkWhenNoWork) {
  auto executor = tf::make_executor(4);
  // Give workers time to go idle.
  for (int i = 0; i < 200 && executor->num_idlers() < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(executor->num_idlers(), 4u);
  // They must wake up and do work afterwards.
  tf::Taskflow tf(executor);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) tf.emplace([&] { counter++; });
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), 100);
}

TEST(Executor, RepeatedConstructionDestruction) {
  // Start/stop churn must not deadlock or leak tasks.
  for (int rep = 0; rep < 20; ++rep) {
    tf::Taskflow tf(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) tf.emplace([&] { counter++; });
    tf.wait_for_all();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(Executor, MillionTaskScale) {
  // Million-scale tasking is the paper's headline workload scale.
  tf::Taskflow tf(4);
  std::atomic<long> counter{0};
  constexpr int n = 1'000'000;
  tf.parallel_for(0, n, 1, [&](int) { counter.fetch_add(1, std::memory_order_relaxed); },
                  256);
  tf.wait_for_all();
  EXPECT_EQ(counter.load(), n);
}

}  // namespace
