// Chase-Lev work-stealing queue: owner semantics, growth, and concurrent
// owner/thief property tests.
#include "taskflow/wsq.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace {

using Queue = tf::WorkStealingQueue<std::intptr_t>;

TEST(Wsq, StartsEmpty) {
  Queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.steal().has_value());
}

TEST(Wsq, OwnerPopIsLifo) {
  Queue q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(Wsq, StealIsFifo) {
  Queue q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.steal().value(), 1);
  EXPECT_EQ(q.steal().value(), 2);
  EXPECT_EQ(q.steal().value(), 3);
  EXPECT_FALSE(q.steal().has_value());
}

TEST(Wsq, MixedPopAndStealMeetInTheMiddle) {
  Queue q;
  for (std::intptr_t i = 0; i < 10; ++i) q.push(i);
  EXPECT_EQ(q.steal().value(), 0);
  EXPECT_EQ(q.pop().value(), 9);
  EXPECT_EQ(q.steal().value(), 1);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_EQ(q.size(), 6u);
}

TEST(Wsq, GrowsBeyondInitialCapacity) {
  Queue q(2);
  constexpr std::intptr_t n = 10000;
  for (std::intptr_t i = 0; i < n; ++i) q.push(i);
  EXPECT_EQ(q.size(), static_cast<std::size_t>(n));
  EXPECT_GE(q.capacity(), n);
  for (std::intptr_t i = n - 1; i >= 0; --i) EXPECT_EQ(q.pop().value(), i);
  EXPECT_TRUE(q.empty());
}

TEST(Wsq, InterleavedPushPopStaysConsistent) {
  Queue q(4);
  std::intptr_t pushed = 0, popped = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < (round % 7) + 1; ++i) q.push(pushed++);
    for (int i = 0; i < (round % 5); ++i) {
      if (auto v = q.pop()) ++popped;
    }
  }
  while (q.pop()) ++popped;
  EXPECT_EQ(pushed, popped);
  EXPECT_TRUE(q.empty());
}

// Property: with one owner and many thieves, every pushed item is extracted
// exactly once (no loss, no duplication).
class WsqConcurrency : public ::testing::TestWithParam<int> {};

TEST_P(WsqConcurrency, EveryItemExtractedExactlyOnce) {
  const int num_thieves = GetParam();
  constexpr std::intptr_t n = 50000;

  Queue q(64);
  std::atomic<bool> done{false};
  std::vector<std::vector<std::intptr_t>> stolen(static_cast<std::size_t>(num_thieves));
  std::vector<std::thread> thieves;

  for (int t = 0; t < num_thieves; ++t) {
    thieves.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = q.steal()) stolen[static_cast<std::size_t>(t)].push_back(*v);
      }
      // Final drain so nothing is left behind.
      while (auto v = q.steal()) stolen[static_cast<std::size_t>(t)].push_back(*v);
    });
  }

  std::vector<std::intptr_t> popped;
  for (std::intptr_t i = 0; i < n; ++i) {
    q.push(i);
    if (i % 3 == 0) {
      if (auto v = q.pop()) popped.push_back(*v);
    }
  }
  while (auto v = q.pop()) popped.push_back(*v);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::multiset<std::intptr_t> all(popped.begin(), popped.end());
  for (const auto& lane : stolen) all.insert(lane.begin(), lane.end());

  ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
  std::intptr_t expect = 0;
  for (auto v : all) EXPECT_EQ(v, expect++);
}

INSTANTIATE_TEST_SUITE_P(Thieves, WsqConcurrency, ::testing::Values(1, 2, 4, 8));

// Property: steals preserve FIFO order per thief-free prefix - i.e. a single
// thief always observes strictly increasing values when the owner only pushes.
TEST(Wsq, SingleThiefObservesFifoOrder) {
  Queue q(8);
  std::atomic<bool> done{false};
  std::vector<std::intptr_t> seen;
  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (auto v = q.steal()) seen.push_back(*v);
    }
    while (auto v = q.steal()) seen.push_back(*v);
  });
  for (std::intptr_t i = 0; i < 20000; ++i) q.push(i);
  done.store(true, std::memory_order_release);
  thief.join();
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
  EXPECT_EQ(seen.size(), 20000u);
}

}  // namespace
