// visualization.cpp - debugging a task dependency graph via the DOT dump
// (paper §III-G, Fig. 5): a nested subflow rendered as nested clusters.
// Writes fig5_nested_subflow.dot; render with `dot -Tpng`.
//
//   build/examples/visualization [out.dot]
#include <fstream>
#include <iostream>

#include "taskflow/taskflow.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "fig5_nested_subflow.dot";

  tf::Taskflow tf;

  // The paper's Fig. 5 structure: A spawns {A1, A2}; A2 spawns {A2_1, A2_2}.
  auto A = tf.emplace([](tf::SubflowBuilder& sfa) {
    auto A1 = sfa.emplace([]() {});
    A1.name("A1");
    auto A2 = sfa.emplace([](tf::SubflowBuilder& sfa2) {
      auto A2_1 = sfa2.emplace([]() {});
      A2_1.name("A2_1");
      auto A2_2 = sfa2.emplace([]() {});
      A2_2.name("A2_2");
      A2_1.precede(A2_2);
    });
    A2.name("A2");
    A1.precede(A2);
  });
  A.name("A");

  // Subflows exist only after execution: dispatch, wait, then dump.
  tf.silent_dispatch();
  tf.wait_for_topologies();

  const std::string dot = tf.dump_topologies();
  std::ofstream(path) << dot;
  std::cout << dot;
  std::cout << "wrote " << path << " (render with: dot -Tpng " << path
            << " -o graph.png)\n";
  tf.wait_for_all();
  return 0;
}
