// timing_analysis.cpp - the paper's motivating application (§II): an
// incremental VLSI static timing analyzer built on task dependency graphs.
// Builds a synthetic circuit, runs a full timing update with the taskflow
// engine, applies incremental gate resizes, and dumps the task dependency
// graph of a single timing update (paper Fig. 8).
//
//   build/examples/timing_analysis [num_gates] [iterations]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "timer/modifier.hpp"
#include "timer/timers.hpp"

int main(int argc, char** argv) {
  const std::size_t num_gates = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2000;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 10;

  const auto lib = ot::CellLibrary::make_synthetic();
  ot::CircuitSpec spec;
  spec.num_gates = num_gates;
  spec.seed = 1;
  auto netlist = ot::make_circuit(lib, spec);
  std::cout << "circuit: " << netlist.num_gates() << " gates, " << netlist.num_nets()
            << " nets, " << netlist.num_pins() << " pins\n";

  ot::TimerOptions opt;
  opt.num_threads = 4;
  opt.clock_period = 2.0;
  ot::TimerV2 timer(netlist, opt);

  timer.full_update();
  std::cout << "full timing: worst slack = " << timer.worst_slack() << " ns ("
            << timer.last_update_tasks() << " tasks)\n";

  ot::ModifierStream mods(netlist, 42);
  for (int i = 0; i < iterations; ++i) {
    const auto m = mods.next();
    timer.resize(m.gate, *m.new_cell);
    std::cout << "iteration " << i << ": resized " << netlist.gate(m.gate).name
              << " -> " << m.new_cell->name << ", affected tasks = "
              << timer.last_update_tasks() << ", worst slack = " << timer.worst_slack()
              << " ns\n";
  }

  const std::string dot = timer.dump_last_task_graph();
  if (!dot.empty()) {
    std::ofstream("fig8_timing_update.dot") << dot;
    std::cout << "wrote fig8_timing_update.dot (task graph of the last update)\n";
  }
  return 0;
}
