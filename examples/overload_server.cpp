// overload_server.cpp - the service layer in one page (DESIGN.md §13).
//
// A toy request server built on tf::Server: four client threads connect()
// and stream requests through composed/conditional pipelines (ingest ->
// validate -> process module with retry + fallback-to-degraded -> respond)
// under a per-request deadline and priority band, over an executor
// configured with every overload policy at once - a pending bound
// (backpressure), a concurrency cap arbitrated by deficit-round-robin +
// priority bands, a global shed watermark, and circuit breakers.  Chaos
// mode injects malformed requests, handler exceptions, and stalls, so the
// demo shows the failure taxonomy live: every submission lands in exactly
// one Outcome and the /healthz snapshot accounts them all.
//
// Usage: overload_server [--port P]
//   --port P   additionally serve /healthz over a loopback TCP socket
//              (P = 0 picks an ephemeral port); the demo curls itself once.
#include "service/server.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/probe.hpp"

int main(int argc, char** argv) {
  using namespace std::chrono_literals;

  int port = -1;  // < 0: no socket probe
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) port = std::atoi(argv[i + 1]);
  }

  tf::ServerOptions options;
  options.num_workers = 2;
  options.executor.max_pending_topologies = 16;   // backpressure past this
  options.executor.max_concurrent_topologies = 2; // DRR + bands arbitrate
  options.executor.shed_watermark = 10;           // tail-drop above 10 queued
  options.executor.breaker_threshold = 3;
  options.executor.breaker_cooldown = 50ms;
  options.deadline = 50ms;           // per-request budget, queue time included
  options.admission_timeout = 5ms;   // bound the backpressure wait
  options.max_attempts = 2;          // one retry, then the degraded fallback
  options.chaos.enabled = true;      // the storm: malformed/throwing/stalling
  options.chaos.malformed_rate = 0.05;
  options.chaos.exception_rate = 0.10;
  options.chaos.stall_rate = 0.05;
  options.chaos.stall = 500us;
  tf::Server server(options);

  tf::HealthzProbe probe;
  if (port >= 0 && probe.start(server, static_cast<std::uint16_t>(port))) {
    std::printf("healthz probe listening on 127.0.0.1:%u\n", probe.port());
  }

  auto client_thread = [&](int id, int priority) {
    auto& client = server.connect();
    for (int r = 0; r < 200; ++r) {
      tf::Request request;
      request.id = static_cast<std::uint64_t>(id) * 1000 + static_cast<std::uint64_t>(r);
      request.priority = priority;  // 0 = batch, 1 = normal, 2 = interactive
      request.work = 200us;
      client.submit(request);  // every submission yields exactly one Outcome
    }
    client.drain();
    std::printf("client %d done (priority %d): ok %llu, degraded %llu, "
                "rejected %llu, shed %llu, timed_out %llu\n",
                id, priority,
                static_cast<unsigned long long>(client.count(tf::Outcome::ok)),
                static_cast<unsigned long long>(client.count(tf::Outcome::degraded)),
                static_cast<unsigned long long>(client.count(tf::Outcome::rejected)),
                static_cast<unsigned long long>(client.count(tf::Outcome::shed)),
                static_cast<unsigned long long>(client.count(tf::Outcome::timed_out)));
  };

  std::vector<std::thread> clients;
  clients.emplace_back(client_thread, 0, 2);  // interactive
  clients.emplace_back(client_thread, 1, 1);  // normal
  clients.emplace_back(client_thread, 2, 0);  // batch
  clients.emplace_back(client_thread, 3, 2);  // interactive
  for (auto& t : clients) t.join();

  if (probe.running()) {
    const std::string reply = tf::probe_fetch(probe.port());
    std::printf("--- /healthz over the socket ---\n%s",
                reply.substr(reply.find("\r\n\r\n") == std::string::npos
                                 ? 0
                                 : reply.find("\r\n\r\n") + 4)
                    .c_str());
    probe.stop();
  } else {
    std::printf("--- /healthz ---\n%s", server.healthz().c_str());
  }

  // Zero lost responses: the counters balance exactly at quiescence.
  const tf::MetricsSnapshot snap = server.metrics();
  std::printf("accounted %llu of %llu submitted; p50 %.0f us, p99 %.0f us\n",
              static_cast<unsigned long long>(snap.accounted()),
              static_cast<unsigned long long>(snap.submitted), snap.p50_us,
              snap.p99_us);
  server.shutdown(tf::ShutdownMode::drain);  // graceful: every handle ready
  return snap.accounted() == snap.submitted ? 0 : 1;
}
