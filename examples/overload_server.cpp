// overload_server.cpp - admission control in one page (DESIGN.md §11).
//
// A toy task-graph "server": four client threads submit small request
// graphs to one executor configured with every overload policy at once -
// a per-client backlog bound (backpressure), a global shed watermark
// (tail-drop), a concurrency cap arbitrated by deficit-round-robin +
// priority bands, and a per-taskflow circuit breaker in front of a flaky
// client.  The point: overload becomes an explicit, typed outcome
// (blocking, tf::OverloadError, tf::BreakerOpenError) instead of an
// unbounded invisible queue.
#include "taskflow/taskflow.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <vector>

int main() {
  using namespace std::chrono_literals;

  tf::ExecutorOptions options;
  options.max_pending_per_client = 4;   // backpressure: run() blocks past this
  options.shed_watermark = 10;          // tail-drop above 10 pending runs
  options.max_concurrent_topologies = 2;  // DRR + priority bands arbitrate
  options.breaker_threshold = 3;        // trip after 3 consecutive failures
  options.breaker_cooldown = 50ms;
  tf::Executor executor(2, options);

  std::atomic<long> served{0};
  std::atomic<long> shed{0};
  std::atomic<long> rejected{0};
  std::atomic<long> breaker_blocked{0};

  auto client = [&](int id, bool flaky, int priority) {
    tf::Taskflow requests;
    requests.emplace([&, flaky] {
      std::this_thread::sleep_for(200us);  // the "request handler"
      if (flaky) throw std::runtime_error("downstream dependency down");
      served++;
    });

    tf::RunPolicy policy;
    policy.priority = priority;  // 0 = batch, 1 = normal, 2 = interactive
    std::vector<tf::ExecutionHandle> inflight;
    for (int r = 0; r < 40; ++r) {
      try {
        // Blocking admission: waits when the client's backlog is full.  Use
        // try_run for a non-blocking probe, or AdmissionPolicy::reject +
        // admission_timeout to bound the wait.
        inflight.push_back(executor.run(requests, policy));
      } catch (const tf::BreakerOpenError&) {
        breaker_blocked++;  // fail-fast while this taskflow's breaker cools
        std::this_thread::sleep_for(1ms);
      } catch (const tf::OverloadError&) {
        rejected++;  // reject-policy or admission-timeout submissions
      }
    }
    for (auto& handle : inflight) {
      try {
        handle.get();
      } catch (const tf::OverloadError&) {
        shed++;  // accepted, then load-shed above the watermark
      } catch (const std::runtime_error&) {
        // the flaky handler's own failure; feeds the circuit breaker
      }
    }
    std::printf("client %d done (priority %d%s)\n", id, priority,
                flaky ? ", flaky" : "");
  };

  std::vector<std::thread> clients;
  clients.emplace_back(client, 0, false, 2);  // interactive
  clients.emplace_back(client, 1, false, 1);  // normal
  clients.emplace_back(client, 2, false, 0);  // batch
  clients.emplace_back(client, 3, true, 2);   // flaky interactive: trips the breaker
  for (auto& t : clients) t.join();
  executor.wait_for_all();

  std::printf("served %ld, shed %ld, rejected %ld, breaker-blocked %ld\n",
              served.load(), shed.load(), rejected.load(),
              breaker_blocked.load());
  std::printf("executor counters: admitted %zu, rejected %zu, shed %zu, "
              "breaker trips %zu\n",
              executor.num_admitted(), executor.num_rejected(),
              executor.num_shed(), executor.num_breaker_trips());
  return 0;
}
