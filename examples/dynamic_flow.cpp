// dynamic_flow.cpp - dynamic tasking (paper §III-D, Fig. 4 / Listing 7):
// task B spawns a subflow of three tasks at runtime; the same API used for
// static tasking builds the dynamic graph.  Also demonstrates detach() and
// the non-blocking dispatch interface of Listing 6.
//
//   build/examples/dynamic_flow
#include <iostream>

#include "taskflow/taskflow.hpp"

int main() {
  {
    // -- Fig. 4: joined subflow ------------------------------------------
    tf::Taskflow tf;

    auto [A, C, D] = tf.emplace(
        []() { std::cout << "A\n"; },
        []() { std::cout << "C\n"; },
        []() { std::cout << "D\n"; });
    auto B = tf.emplace([](auto& subflow) {
      std::cout << "B\n";
      auto [B1, B2, B3] = subflow.emplace(
          []() { std::cout << "B1\n"; },
          []() { std::cout << "B2\n"; },
          []() { std::cout << "B3\n"; });
      B1.precede(B3);
      B2.precede(B3);
    });
    A.precede(B, C);
    B.precede(D);
    C.precede(D);

    tf.wait_for_all();  // D prints after the whole subflow joined
  }

  {
    // -- detached subflow: fire-and-forget side work ----------------------
    tf::Taskflow tf;
    auto B = tf.emplace([](tf::SubflowBuilder& sf) {
      sf.emplace([]() { std::cout << "detached logger finished\n"; });
      sf.detach();  // B's successors need not wait for the logger
    });
    auto D = tf.emplace([]() { std::cout << "D (may print before the logger)\n"; });
    B.precede(D);
    tf.wait_for_all();  // ...but the topology still waits for everything
  }

  {
    // -- Listing 6: non-blocking dispatch + overlap -----------------------
    tf::Taskflow tf;
    auto [A, B] = tf.emplace(
        []() { std::cout << "Task A\n"; },
        []() { std::cout << "Task B\n"; });
    A.precede(B);

    auto shared_future = tf.dispatch();
    std::cout << "overlapping the graph execution with other work...\n";
    shared_future.get();  // block until finish
  }
  return 0;
}
