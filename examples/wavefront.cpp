// wavefront.cpp - the 2D wavefront pattern of paper Fig. 6: an NxN block
// matrix where block (i,j) depends on (i-1,j) and (i,j-1), so computation
// sweeps diagonally from top-left to bottom-right.
//
//   build/examples/wavefront [N] [block_work]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "taskflow/taskflow.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int work = argc > 2 ? std::atoi(argv[2]) : 256;

  // value[i][j] = f(value[i-1][j], value[i][j-1]): a data dependency that
  // makes any ordering violation immediately visible in the result.
  std::vector<std::vector<double>> value(static_cast<std::size_t>(n),
                                         std::vector<double>(static_cast<std::size_t>(n), 0.0));

  tf::Taskflow tf;
  std::vector<std::vector<tf::Task>> block(static_cast<std::size_t>(n),
                                           std::vector<tf::Task>(static_cast<std::size_t>(n)));

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      block[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          tf.emplace([&value, i, j, n, work]() {
            const double up = i > 0 ? value[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(j)] : 0.0;
            const double left = j > 0 ? value[static_cast<std::size_t>(i)][static_cast<std::size_t>(j - 1)] : 0.0;
            double acc = up + left + 1.0;
            for (int k = 0; k < work; ++k) acc += 1e-9 * k;  // nominal work
            value[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = acc;
            (void)n;
          })
              .name("b" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i + 1 < n) {
        block[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)].precede(
            block[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(j)]);
      }
      if (j + 1 < n) {
        block[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)].precede(
            block[static_cast<std::size_t>(i)][static_cast<std::size_t>(j + 1)]);
      }
    }
  }

  // Dump the dependency structure (Fig. 6 right) before running it.
  if (n <= 8) {
    std::ofstream("fig6_wavefront.dot") << tf.dump();
    std::cout << "wrote fig6_wavefront.dot\n";
  }

  tf.wait_for_all();

  std::cout << "wavefront " << n << "x" << n
            << " done; corner value = " << value.back().back() << "\n";
  return 0;
}
