// async_tasks.cpp - one shared tf::Executor serving many concurrent clients:
// fire-and-forget async() tasks with futures, plus whole-graph runs, all
// submitted from several client threads onto one thread pool.
//
//   build/examples/async_tasks
#include <future>
#include <iostream>
#include <numeric>
#include <thread>
#include <vector>

#include "taskflow/taskflow.hpp"

int main() {
  tf::Executor executor;  // one pool, many clients

  // async(): submit a single callable, get its result through a future.
  std::future<int> meaning = executor.async([] { return 6 * 7; });

  // An async failure is confined to its own future.
  std::future<void> doomed =
      executor.async([] { throw std::runtime_error("sensor offline"); });

  // Many client threads share the executor concurrently: each builds its own
  // graph and submits runs and asyncs; same-graph runs are serialized FIFO,
  // distinct graphs overlap on the shared workers.
  constexpr int kClients = 4;
  std::vector<long> partial(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&executor, &partial, c] {
      tf::Taskflow chunk;
      auto lo = chunk.emplace([&partial, c] { partial[c] += 1000L * c; });
      auto hi = chunk.emplace([&partial, c] { partial[c] += c; });
      lo.precede(hi);
      executor.run_n(chunk, 3).get();  // three serialized runs of this graph

      // asyncs interleave with graph runs on the same pool
      auto square = executor.async([c] { return c * c; });
      partial[c] += square.get();
    });
  }
  for (auto& t : clients) t.join();
  executor.wait_for_all();  // drain anything still in flight

  std::cout << "async says the answer is " << meaning.get() << "\n";
  try {
    doomed.get();
  } catch (const std::runtime_error& e) {
    std::cout << "doomed async failed as expected: " << e.what() << "\n";
  }
  std::cout << "clients computed "
            << std::accumulate(partial.begin(), partial.end(), 0L) << "\n";
  return 0;
}
