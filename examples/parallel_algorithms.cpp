// parallel_algorithms.cpp - the built-in algorithm collection (paper
// §III-F): parallel_for / reduce / transform_reduce / transform, spliced
// into one larger task dependency graph through their (source, target)
// synchronization pairs.
//
//   build/examples/parallel_algorithms
#include <iostream>
#include <numeric>
#include <vector>

#include "taskflow/taskflow.hpp"

int main() {
  tf::Taskflow tf;

  std::vector<double> data(1 << 20);
  std::vector<double> squared(data.size());
  double sum = 0.0;
  double sum_sq = 0.0;

  // Stage 1: fill with parallel_for over an index range.  Every algorithm
  // emplaces O(worker-count) range-worker tasks pulling index ranges from a
  // shared cursor through a partitioner - GuidedPartitioner (decaying
  // chunks) when omitted; pass one explicitly to pick the schedule.
  auto [fill_s, fill_t] =
      tf.parallel_for(std::size_t{0}, data.size(), std::size_t{1},
                      [&](std::size_t i) { data[i] = 1.0 + static_cast<double>(i % 7); },
                      tf::GuidedPartitioner{});

  // Stage 2a: reduce to a sum.
  auto [sum_s, sum_t] = tf.reduce(data.begin(), data.end(), sum, std::plus<double>{});

  // Stage 2b: transform into squares (runs concurrently with 2a).  Uniform
  // per-element cost balances fine statically: one even range per worker.
  auto [tr_s, tr_t] = tf.transform(data.begin(), data.end(), squared.begin(),
                                   [](double v) { return v * v; },
                                   tf::StaticPartitioner{});

  // Stage 3: transform_reduce on the squares.
  auto [sq_s, sq_t] = tf.reduce(squared.begin(), squared.end(), sum_sq,
                                std::plus<double>{});

  fill_t.precede(sum_s, tr_s);
  tr_t.precede(sq_s);

  auto report = tf.emplace([&]() {
    std::cout << "n       = " << data.size() << "\n"
              << "sum     = " << sum << "\n"
              << "sum_sq  = " << sum_sq << "\n"
              << "mean    = " << sum / static_cast<double>(data.size()) << "\n";
  });
  sum_t.precede(report);
  sq_t.precede(report);

  tf.wait_for_all();

  // Cross-check against the standard library.
  const double ref_sum = std::accumulate(data.begin(), data.end(), 0.0);
  std::cout << "check: std::accumulate = " << ref_sum
            << (ref_sum == sum ? "  [match]" : "  [MISMATCH]") << "\n";
  return 0;
}
