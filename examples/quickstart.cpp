// quickstart.cpp - the paper's Listing 1 diamond dependency graph, on the
// executor-centric API: a tf::Taskflow is a pure reusable graph and a
// tf::Executor is the (shareable) run entry point.
//
//   build/examples/quickstart
#include <iostream>

#include "taskflow/taskflow.hpp"

int main() {
  tf::Taskflow taskflow;  // a pure graph: no threads yet

  auto [A, B, C, D] = taskflow.emplace(
      []() { std::cout << "Task A\n"; },
      []() { std::cout << "Task B\n"; },
      []() { std::cout << "Task C\n"; },
      []() { std::cout << "Task D\n"; });

  A.precede(B, C);  // A runs before B and C
  B.precede(D);     // B runs before D
  C.precede(D);     // C runs before D

  tf::Executor executor;          // the thread pool
  executor.run(taskflow).get();   // run once, block until finish
  return 0;
}
