// quickstart.cpp - the paper's Listing 1: a four-task diamond dependency
// graph with no explicit thread management or locks.
//
//   build/examples/quickstart
#include <iostream>

#include "taskflow/taskflow.hpp"

int main() {
  tf::Taskflow tf;

  auto [A, B, C, D] = tf.emplace(
      []() { std::cout << "Task A\n"; },
      []() { std::cout << "Task B\n"; },
      []() { std::cout << "Task C\n"; },
      []() { std::cout << "Task D\n"; });

  A.precede(B, C);  // A runs before B and C
  B.precede(D);     // B runs before D
  C.precede(D);     // C runs before D

  tf.wait_for_all();  // block until finish
  return 0;
}
