// mnist_training.cpp - the paper's §IV-C machine-learning workload: train
// the 3-layer MNIST classifier (784x32x32x10) with the Fig. 11 task
// decomposition on Cpp-Taskflow, and report loss/accuracy.
//
// Uses real MNIST IDX files from data/ when present, else the synthetic
// generator (same shapes).
//
//   build/examples/mnist_training [num_images] [epochs]
#include <cstdlib>
#include <iostream>

#include "nn/trainers.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 6000;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 5;

  const auto dataset = nn::load_or_synthesize("data", n);
  std::cout << "dataset: " << dataset.size() << " images\n";

  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 100;
  cfg.learning_rate = 0.1f;  // synthetic data likes a larger step than MNIST
  cfg.num_threads = 4;

  nn::Mlp net({784, 32, 32, 10}, /*seed=*/1);
  std::cout << "training 3-layer DNN (784x32x32x10), "
            << nn::tasks_per_epoch(net, dataset, cfg) << " tasks per epoch\n";

  const auto result = nn::train_taskflow(net, dataset, cfg);
  std::cout << "trained " << cfg.epochs << " epochs in " << result.elapsed_ms / 1000.0
            << " s (" << result.total_tasks << " tasks total)\n";
  std::cout << "last-epoch mean loss = " << result.last_epoch_loss << "\n";
  std::cout << "training accuracy = " << net.accuracy(dataset.images, dataset.labels)
            << "\n";
  return 0;
}
