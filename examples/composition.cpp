// composition.cpp - composable taskflows (second paper §III-B): build one
// reusable sub-Taskflow and compose it, via composed_of, into two parent
// graphs that run CONCURRENTLY on one executor.  Each parent instantiates
// its own expansion of the shared target at execution time, so the target
// is defined once and the two in-flight runs never interfere.
//
//   build/examples/composition
#include <atomic>
#include <iostream>
#include <string>

#include "taskflow/taskflow.hpp"

int main() {
  std::atomic<int> preprocessed{0};
  std::atomic<int> reduced{0};

  // The shared stage: a small preprocess -> reduce pipeline, defined once.
  tf::Taskflow stage;
  auto pre = stage.emplace([&] { preprocessed++; }).name("preprocess");
  auto red = stage.emplace([&] { reduced++; }).name("reduce");
  pre.precede(red);

  // Parent A: load -> [stage] -> report.
  tf::Taskflow parent_a;
  auto a_load = parent_a.emplace([] {}).name("A:load");
  auto a_stage = parent_a.composed_of(stage).name("stage");
  auto a_report = parent_a.emplace([] {}).name("A:report");
  a_load.precede(a_stage);
  a_stage.precede(a_report);

  // Parent B reuses the same target in a different shape: two independent
  // stage instances fan out of one source and join into a summary.
  tf::Taskflow parent_b;
  auto b_src = parent_b.emplace([] {}).name("B:source");
  auto b_stage1 = parent_b.composed_of(stage).name("stage");
  auto b_stage2 = parent_b.composed_of(stage).name("stage");
  auto b_sum = parent_b.emplace([] {}).name("B:summary");
  b_src.precede(b_stage1, b_stage2);
  b_sum.gather(std::vector<tf::Task>{b_stage1, b_stage2});

  // The module structure is visible before execution: composed targets
  // render as boxed "Module:" clusters in the DOT dump.
  std::cout << parent_b.dump() << '\n';

  tf::Executor executor(4);
  auto ha = executor.run(parent_a);  // both parents in flight at once,
  auto hb = executor.run(parent_b);  // each with its own stage expansion(s)
  ha.get();
  hb.get();

  std::cout << "stage ran " << preprocessed.load() << "x preprocess, "
            << reduced.load() << "x reduce across two concurrent parents\n";
  return 0;
}
