// framework_loop.cpp - build one task dependency graph and re-run it many
// times without reconstruction (the iterative inner-loop pattern of the
// paper's motivating applications: one optimization step = one run of the
// same analysis graph).  Executor-centric API: the reusable graph is a plain
// tf::Taskflow and tf::Executor::run_n queues the repeats.
//
//   build/examples/framework_loop [iterations]
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "support/chrono.hpp"
#include "taskflow/taskflow.hpp"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 100;

  // A small "analysis pipeline": scale -> two parallel statistics -> merge.
  std::vector<double> signal(1 << 16);
  std::iota(signal.begin(), signal.end(), 0.0);
  double sum = 0.0, sum_sq = 0.0, gain = 1.0, energy = 0.0;

  tf::Taskflow pipeline;
  auto scale = pipeline.emplace([&] {
    for (double& v : signal) v *= gain;
  });
  auto stat_sum = pipeline.emplace([&] {
    sum = std::accumulate(signal.begin(), signal.end(), 0.0);
  });
  auto stat_sq = pipeline.emplace([&] {
    sum_sq = 0.0;
    for (double v : signal) sum_sq += v * v;
  });
  auto merge = pipeline.emplace([&] {
    energy = sum_sq / (1.0 + sum);
    gain = 0.999;  // feedback for the next iteration
  });
  scale.precede(stat_sum, stat_sq);
  merge.gather(std::vector<tf::Task>{stat_sum, stat_sq});

  tf::Executor executor(4);
  support::Stopwatch sw;
  executor.run_n(pipeline, static_cast<std::size_t>(iterations)).get();
  std::cout << iterations << " runs of a 4-task graph in " << sw.elapsed_ms()
            << " ms (energy = " << energy << ")\n";

  // Contrast: the paper-era dispatch model rebuilds the graph per iteration
  // (still compiles - the legacy API is shimmed over the executor).
  support::Stopwatch sw2;
  for (int i = 0; i < iterations; ++i) {
    tf::Taskflow rebuild(4);
    auto a = rebuild.emplace([&] {
      for (double& v : signal) v *= gain;
    });
    auto b = rebuild.emplace([&] {
      sum = std::accumulate(signal.begin(), signal.end(), 0.0);
    });
    auto c = rebuild.emplace([&] {
      sum_sq = 0.0;
      for (double v : signal) sum_sq += v * v;
    });
    auto d = rebuild.emplace([&] { energy = sum_sq / (1.0 + sum); });
    a.precede(b, c);
    d.gather(std::vector<tf::Task>{b, c});
    rebuild.wait_for_all();
  }
  std::cout << iterations << " rebuild-per-iteration dispatches in "
            << sw2.elapsed_ms() << " ms\n";
  return 0;
}
