// framework_loop.cpp - three ways to iterate one task dependency graph (the
// inner-loop pattern of the paper's motivating applications: one
// optimization step = one run of the same analysis graph):
//
//   1. an in-graph condition loop: a condition task loops the graph back on
//      itself, so the whole convergence runs inside ONE topology with no
//      per-iteration submission (second paper's conditional tasking),
//   2. executor resubmission: tf::Executor::run_n queues the repeats of a
//      reusable graph (one topology per iteration),
//   3. the paper-era dispatch model: rebuild the graph every iteration.
//
//   build/examples/framework_loop [iterations]
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "support/chrono.hpp"
#include "taskflow/taskflow.hpp"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 100;

  // A small "analysis pipeline": scale -> two parallel statistics -> merge.
  std::vector<double> signal(1 << 16);
  std::iota(signal.begin(), signal.end(), 0.0);
  double sum = 0.0, sum_sq = 0.0, gain = 1.0, energy = 0.0;

  tf::Taskflow pipeline;
  auto scale = pipeline.emplace([&] {
    for (double& v : signal) v *= gain;
  });
  auto stat_sum = pipeline.emplace([&] {
    sum = std::accumulate(signal.begin(), signal.end(), 0.0);
  });
  auto stat_sq = pipeline.emplace([&] {
    sum_sq = 0.0;
    for (double v : signal) sum_sq += v * v;
  });
  auto merge = pipeline.emplace([&] {
    energy = sum_sq / (1.0 + sum);
    gain = 0.999;  // feedback for the next iteration
  });
  scale.precede(stat_sum, stat_sq);
  merge.gather(std::vector<tf::Task>{stat_sum, stat_sq});

  tf::Executor executor(4);

  // Variant 1: the loop lives inside the graph.  A condition task checks
  // convergence after the merge; branch 0 re-arms the pipeline body, branch
  // 1 exits.  One run() covers all iterations - the scheduler re-fires the
  // visited nodes without re-arming the topology.
  int lap = 0;
  tf::Taskflow looped;
  auto init = looped.emplace([&] { lap = 0; }).name("init");
  auto lscale = looped.emplace([&] {
    for (double& v : signal) v *= gain;
  }).name("scale");
  auto lsum = looped.emplace([&] {
    sum = std::accumulate(signal.begin(), signal.end(), 0.0);
  }).name("sum");
  auto lsq = looped.emplace([&] {
    sum_sq = 0.0;
    for (double v : signal) sum_sq += v * v;
  }).name("sum_sq");
  auto lmerge = looped.emplace([&] {
    energy = sum_sq / (1.0 + sum);
    gain = 0.999;
  }).name("merge");
  auto check = looped.emplace([&] {
    return ++lap < iterations ? 0 : 1;  // 0: next lap, 1: converged
  }).name("converged?");
  auto done = looped.emplace([] {}).name("done");
  init.precede(lscale);
  lscale.precede(lsum, lsq);
  lmerge.gather(std::vector<tf::Task>{lsum, lsq});
  lmerge.precede(check);
  check.precede(lscale);  // weak back-edge: the in-graph loop
  check.precede(done);

  support::Stopwatch sw0;
  executor.run(looped).get();
  std::cout << iterations << " laps of an in-graph condition loop in "
            << sw0.elapsed_ms() << " ms (energy = " << energy << ")\n";

  // Variant 2: resubmission of a reusable graph, one topology per iteration.
  support::Stopwatch sw;
  executor.run_n(pipeline, static_cast<std::size_t>(iterations)).get();
  std::cout << iterations << " runs of a 4-task graph in " << sw.elapsed_ms()
            << " ms (energy = " << energy << ")\n";

  // Variant 3: the paper-era dispatch model rebuilds the graph per iteration
  // (still compiles - the legacy API is shimmed over the executor).
  support::Stopwatch sw2;
  for (int i = 0; i < iterations; ++i) {
    tf::Taskflow rebuild(4);
    auto a = rebuild.emplace([&] {
      for (double& v : signal) v *= gain;
    });
    auto b = rebuild.emplace([&] {
      sum = std::accumulate(signal.begin(), signal.end(), 0.0);
    });
    auto c = rebuild.emplace([&] {
      sum_sq = 0.0;
      for (double v : signal) sum_sq += v * v;
    });
    auto d = rebuild.emplace([&] { energy = sum_sq / (1.0 + sum); });
    a.precede(b, c);
    d.gather(std::vector<tf::Task>{b, c});
    rebuild.wait_for_all();
  }
  std::cout << iterations << " rebuild-per-iteration dispatches in "
            << sw2.elapsed_ms() << " ms\n";
  return 0;
}
